// Package marketd is the durable market daemon: a long-lived auction
// service whose submitted bids, solved outcomes, and payment ledger
// survive process death.
//
// Architecturally it is a thin state machine wrapped around two
// existing layers: internal/batch solves (a bounded-queue worker pool
// over pooled engines), and internal/wal remembers (an append-only
// checksummed event log). The market's own job is exactly-once
// bookkeeping across crashes:
//
//   - Submit assigns a sequence number, appends a bid record to the WAL
//     (the acknowledgment is the durability point), then enqueues the
//     instance under that sequence via Service.SubmitSeq;
//   - the consumer drains Service.Results and commits each outcome:
//     per-winner pay records, then a self-contained outcome record —
//     the commit marker — and only then installs the outcome and its
//     ledger effects in memory;
//   - Open replays the log: committed outcomes are restored verbatim
//     (never re-solved, so payments can never drift), orphan pay
//     records without a commit marker are discarded, duplicate records
//     are dropped by sequence number, and bid records with no commit
//     marker are re-submitted under their original sequence numbers.
//
// Because the solver is deterministic, a re-solved pending bid commits
// the byte-identical outcome record the lost solve would have written;
// replay is therefore bit-identical: the recovered state equals the
// state of an uninterrupted run, with zero lost or duplicated sequence
// numbers. The crash-point matrix (see Config.Crash and the test/e2e
// suite) pins this for every interleaving of the commit protocol.
package marketd

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/fedauction/afl/internal/batch"
	"github.com/fedauction/afl/internal/core"
	"github.com/fedauction/afl/internal/obs"
	"github.com/fedauction/afl/internal/wal"
)

// Crash points of the commit protocol, in protocol order. Config.Crash
// is consulted at each; returning true kills the market on the spot —
// the in-process equivalent of SIGKILL — leaving the WAL exactly as the
// protocol had it at that instant. The restart suite drives every point
// and asserts recovery converges to the uninterrupted golden state.
const (
	// CrashBidLogged fires after a submission's bid record is durably
	// appended, before it reaches the solve queue.
	CrashBidLogged = "bid_logged"
	// CrashOutcomeSolved fires after the solver produced an outcome,
	// before any of its ledger records are appended.
	CrashOutcomeSolved = "outcome_solved"
	// CrashLedgerPartial fires after the first pay record of a multi-
	// winner outcome, leaving the ledger write-ahead torn mid-group.
	CrashLedgerPartial = "ledger_partial"
	// CrashPreCommit fires after every pay record, before the outcome
	// commit marker.
	CrashPreCommit = "pre_commit"
	// CrashPostCommit fires after the commit marker is appended and the
	// outcome installed — the crash that must change nothing on replay.
	CrashPostCommit = "post_commit"
)

// WALFileName is the log file the market keeps inside Config.Dir.
const WALFileName = "market.wal"

var (
	// ErrClosed is returned by operations on a closed or killed market.
	ErrClosed = errors.New("marketd: market closed")
	// ErrUnknownSeq is returned by Wait and Outcome for a sequence
	// number the market never issued.
	ErrUnknownSeq = errors.New("marketd: unknown sequence number")
)

// Config configures a market.
type Config struct {
	// Dir is the durability directory; the market keeps WALFileName
	// inside it. Empty runs the market volatile (no WAL, no recovery) —
	// the pre-durability Service behaviour, useful for benchmarks.
	Dir string
	// Workers and Queue follow batch.Options: pool width (0 selects
	// GOMAXPROCS) and submission queue bound (0 selects twice the
	// workers).
	Workers, Queue int
	// SyncEvery batches WAL fsyncs (see wal.Options); 0 or 1 syncs every
	// record, which makes every acknowledged submission durable.
	SyncEvery int
	// NoSync disables fsync (tests only).
	NoSync bool
	// RatePerSec and Burst configure the per-client token bucket applied
	// at the HTTP edge. RatePerSec <= 0 disables rate limiting; Burst
	// <= 0 selects max(1, ceil(RatePerSec)).
	RatePerSec float64
	Burst      int
	// MaxPending bounds admission at the HTTP edge: submissions are
	// rejected with 503 while more than MaxPending acknowledged
	// submissions await their outcome. <= 0 disables the check.
	MaxPending int
	// Observer receives the market's events (market_recovered, wal_fault,
	// rate_limited, admission_rejected) in addition to the batch and
	// per-auction streams. Nil disables instrumentation.
	Observer obs.Observer
	// Now supplies timestamps for event latencies and the rate limiter;
	// nil selects time.Now.
	Now func() time.Time
	// Rule, when non-nil, overrides every submission's Cfg.PaymentRule at
	// Submit time, BEFORE the bid record is logged — the WAL then carries
	// the overridden rule, so a recovery re-solve of a pending bid uses
	// the same rule the original solve would have, regardless of the
	// options the reopened market is given. Nil solves each submission
	// under its own Cfg.
	Rule *core.PaymentRule
	// Solver, when non-nil, overrides every submission's solver tier at
	// Submit time, with the same before-logging semantics as Rule: the
	// bid record carries the tier, so recovery re-solves pending bids
	// under it. Nil solves each submission under its own Instance.Solver.
	Solver *core.Solver
	// Crash is test instrumentation: consulted at each crash point with
	// the submission's sequence number; returning true kills the market
	// as if the process died there. Nil (production) never crashes.
	Crash func(point string, seq int) bool
}

// Market is a durable auction market service. All methods are safe for
// concurrent use.
type Market struct {
	cfg     Config
	svc     *batch.Service
	cancel  context.CancelFunc
	log     *wal.Log // nil when volatile
	limiter *tokenBucket

	killOnce     sync.Once
	killedFlag   atomic.Bool
	killCh       chan struct{}
	consumerDone chan struct{}

	mu       sync.Mutex
	closed   bool
	next     int
	pending  map[int]struct{} // acknowledged, not yet committed
	outcomes map[int]OutcomeRecord
	waiters  map[int]chan struct{}
	faults   int // WAL anomalies absorbed during recovery
}

// Open starts (or restarts) a market. With a durability directory it
// replays the WAL first: committed outcomes and the ledger are restored
// verbatim, torn tails and duplicate records are absorbed (counted in
// RecoveredFaults), and logged-but-uncommitted bids are re-submitted
// under their original sequence numbers before Open returns. ctx bounds
// the market's lifetime; cancel it or call Close.
func Open(ctx context.Context, cfg Config) (*Market, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	base, cancel := context.WithCancel(ctx)
	m := &Market{
		cfg:          cfg,
		cancel:       cancel,
		killCh:       make(chan struct{}),
		consumerDone: make(chan struct{}),
		pending:      make(map[int]struct{}),
		outcomes:     make(map[int]OutcomeRecord),
		waiters:      make(map[int]chan struct{}),
	}
	if cfg.RatePerSec > 0 {
		m.limiter = newTokenBucket(cfg.RatePerSec, cfg.Burst, cfg.Now)
	}
	m.svc = batch.NewService(base, batch.Options{
		Workers:  cfg.Workers,
		Queue:    cfg.Queue,
		Observer: cfg.Observer,
		Now:      cfg.Now,
	})

	var pendingInst map[int]batch.Instance
	if cfg.Dir != "" {
		var start time.Time
		if cfg.Observer != nil {
			start = cfg.Now()
		}
		var err error
		pendingInst, err = m.recover()
		if err != nil {
			cancel()
			m.svc.Close()
			return nil, err
		}
		if o := cfg.Observer; o != nil {
			o.Observe(obs.Event{
				Kind: obs.EvMarketRecovered, Client: -1, Bid: -1,
				Value: float64(len(m.outcomes)), Round: len(pendingInst),
				OK: m.faults == 0, Dur: cfg.Now().Sub(start),
			})
		}
	}

	go m.consume()

	// Re-submit survivors under their original sequence numbers, lowest
	// first. The consumer is already draining, so queue backpressure
	// cannot deadlock the replay however large the backlog is.
	seqs := make([]int, 0, len(pendingInst))
	for seq := range pendingInst {
		seqs = append(seqs, seq)
	}
	sort.Ints(seqs)
	for _, seq := range seqs {
		if err := m.svc.SubmitSeq(ctx, seq, pendingInst[seq]); err != nil {
			m.Close()
			return nil, fmt.Errorf("marketd: replaying seq %d: %w", seq, err)
		}
	}
	return m, nil
}

// recover opens the WAL, replays every record into the market's state,
// and returns the logged-but-uncommitted instances keyed by sequence
// number. Runs before the consumer starts, so no locking is needed.
func (m *Market) recover() (map[int]batch.Instance, error) {
	pendingInst := make(map[int]batch.Instance)
	stagedPays := make(map[int]int) // seq -> pay records seen before its commit
	replay := func(payload []byte) error {
		r, err := decodeRecord(payload)
		if err != nil {
			return err
		}
		switch r.Type {
		case recBid:
			if _, done := m.outcomes[r.Seq]; done {
				m.fault("dup_record", float64(r.Seq))
				return nil
			}
			if _, dup := pendingInst[r.Seq]; dup {
				m.fault("dup_record", float64(r.Seq))
				return nil
			}
			var cfg core.Config
			if r.Cfg != nil {
				cfg = r.Cfg.ToConfig()
			}
			solver, err := core.ParseSolver(r.Solver)
			if err != nil {
				return fmt.Errorf("marketd: bid record %d: %w", r.Seq, err)
			}
			pendingInst[r.Seq] = batch.Instance{Bids: r.Bids, Cfg: cfg, Solver: solver}
			if r.Seq >= m.next {
				m.next = r.Seq + 1
			}
		case recPay:
			if _, done := m.outcomes[r.Seq]; done {
				m.fault("dup_record", float64(r.Seq))
				return nil
			}
			stagedPays[r.Seq]++
		case recOutcome:
			if _, done := m.outcomes[r.Seq]; done {
				m.fault("dup_record", float64(r.Seq))
				return nil
			}
			if r.Outcome == nil {
				return fmt.Errorf("marketd: outcome record %d without a body", r.Seq)
			}
			m.installLocked(*r.Outcome)
			delete(pendingInst, r.Seq)
			delete(stagedPays, r.Seq)
			if r.Seq >= m.next {
				m.next = r.Seq + 1
			}
		}
		return nil
	}

	path := filepath.Join(m.cfg.Dir, WALFileName)
	log, stats, err := wal.Open(path, wal.Options{SyncEvery: m.cfg.SyncEvery, NoSync: m.cfg.NoSync}, replay)
	if err != nil {
		return nil, err
	}
	m.log = log
	if stats.DroppedBytes > 0 {
		m.fault("torn_tail", float64(stats.DroppedBytes))
	}
	// Pay records whose commit marker never reached disk: the ledger
	// write-ahead of a solve that will be re-done. Discarded — their
	// seqs are still in pendingInst, so the re-solve re-writes them.
	orphans := make([]int, 0, len(stagedPays))
	for seq := range stagedPays {
		orphans = append(orphans, seq)
	}
	sort.Ints(orphans)
	for _, seq := range orphans {
		m.fault("orphan_payment", float64(seq))
	}
	return pendingInst, nil
}

// fault counts one absorbed WAL anomaly and reports it to the observer.
func (m *Market) fault(label string, value float64) {
	m.faults++
	if o := m.cfg.Observer; o != nil {
		o.Observe(obs.Event{
			Kind: obs.EvWALFault, Client: -1, Bid: -1, Label: label, Value: value,
		})
	}
}

// installLocked commits an outcome record to in-memory state: the
// outcome index and any waiters. The ledger is derived from the
// outcome index on demand (see ledgerLocked), never accumulated in
// commit order — float addition is order-sensitive, and commit order
// varies with worker scheduling while replay order does not. Callers
// hold m.mu (or, during recovery, exclusive access).
func (m *Market) installLocked(rec OutcomeRecord) {
	m.outcomes[rec.Seq] = rec
	delete(m.pending, rec.Seq)
	if ch, ok := m.waiters[rec.Seq]; ok {
		close(ch)
		delete(m.waiters, rec.Seq)
	}
}

// crashLocked consults the crash-point hook; on true it kills the
// market (caller holds m.mu) and reports that the operation must abort.
func (m *Market) crashLocked(point string, seq int) bool {
	if m.cfg.Crash != nil && m.cfg.Crash(point, seq) {
		m.killLocked()
		return true
	}
	return false
}

// killLocked is the in-process SIGKILL: stop the workers, wake every
// blocked caller, and close the WAL file without flushing its buffer —
// whatever the commit protocol had durably written stays, everything
// else is gone. Caller holds m.mu.
func (m *Market) killLocked() {
	m.killOnce.Do(func() {
		m.killedFlag.Store(true)
		m.cancel()
		close(m.killCh)
		if m.log != nil {
			m.log.Abort()
		}
	})
}

// Killed reports whether the market died at a crash point.
func (m *Market) Killed() bool { return m.killedFlag.Load() }

// Dead returns a channel closed when the market dies at a crash point.
// A graceful Close never closes it; daemons select on it to exit when
// the market is gone.
func (m *Market) Dead() <-chan struct{} { return m.killCh }

// RecoveredFaults returns the number of WAL anomalies (torn tail,
// duplicate records, orphan payments) absorbed during recovery.
func (m *Market) RecoveredFaults() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.faults
}

// Submit acknowledges one auction submission and returns its sequence
// number. On a durable market the bid record is appended to the WAL
// before the acknowledgment — under SyncEvery <= 1 an acked submission
// survives any crash — and client names the submitter for the audit
// trail (it does not affect the auction). Submit then blocks under the
// service's queue backpressure until the instance is enqueued, ctx is
// done, or the market closes. A non-nil error with a valid sequence
// number (>= 0) means the submission is durably logged but was not
// queued in this process's lifetime; it will be solved on the next
// Open.
func (m *Market) Submit(ctx context.Context, client string, inst batch.Instance) (int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if m.cfg.Rule != nil {
		inst.Cfg.PaymentRule = *m.cfg.Rule
	}
	if m.cfg.Solver != nil {
		inst.Solver = *m.cfg.Solver
	}
	if inst.Set != nil && inst.Bids == nil {
		// Columnar submissions are solved through the shared Set (the batch
		// layer's warm-start path), but the WAL speaks rows: materialize
		// them once here so the logged record is byte-identical to a row
		// submission of the same population.
		inst.Bids = inst.Set.Bids()
	}
	m.mu.Lock()
	if m.closed || m.killedFlag.Load() {
		m.mu.Unlock()
		return -1, ErrClosed
	}
	seq := m.next
	if m.log != nil {
		payload, err := encodeBidRecord(seq, client, inst)
		if err != nil {
			m.mu.Unlock()
			return -1, err
		}
		if err := m.log.Append(payload); err != nil {
			m.mu.Unlock()
			return -1, err
		}
	}
	m.next = seq + 1
	m.pending[seq] = struct{}{}
	if m.crashLocked(CrashBidLogged, seq) {
		m.mu.Unlock()
		return seq, nil // durably acked; the next Open will solve it
	}
	m.mu.Unlock()

	// The enqueue happens outside the lock: queue backpressure must
	// never block the consumer's commits (which need the lock).
	if err := m.svc.SubmitSeq(ctx, seq, inst); err != nil {
		return seq, err
	}
	return seq, nil
}

// consume drains the service's outcomes and commits each one.
func (m *Market) consume() {
	defer close(m.consumerDone)
	for {
		select {
		case oc, ok := <-m.svc.Results():
			if !ok {
				return
			}
			if !m.commit(oc) {
				return
			}
		case <-m.killCh:
			return
		}
	}
}

// commit runs the durable commit protocol for one outcome. Reports
// false when the market died at a crash point mid-protocol.
func (m *Market) commit(oc batch.Outcome) bool {
	if oc.Err != nil && errors.Is(oc.Err, core.ErrCanceled) {
		// A cancellation is not a terminal outcome: the bid record stays
		// pending in the WAL and the next Open re-solves it. Never
		// persisted, so a canceled solve can never shadow a real one.
		return !m.killedFlag.Load()
	}
	rec := recordFromOutcome(oc)
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.outcomes[rec.Seq]; dup {
		// Exactly-once guard: a sequence number commits once per market
		// lifetime, whatever the scheduler delivered.
		return true
	}
	if m.crashLocked(CrashOutcomeSolved, rec.Seq) {
		return false
	}
	if m.log != nil {
		for i, w := range rec.Winners {
			payload, err := encodePayRecord(rec.Seq, w)
			if err == nil {
				err = m.log.Append(payload)
			}
			if err != nil {
				m.killLocked() // a failing log is a dead market, not a silent one
				return false
			}
			if i == 0 && m.crashLocked(CrashLedgerPartial, rec.Seq) {
				return false
			}
		}
		if m.crashLocked(CrashPreCommit, rec.Seq) {
			return false
		}
		payload, err := encodeOutcomeRecord(rec)
		if err == nil {
			err = m.log.Append(payload)
		}
		if err != nil {
			m.killLocked()
			return false
		}
	}
	m.installLocked(rec)
	return !m.crashLocked(CrashPostCommit, rec.Seq)
}

// Outcome returns the committed outcome for seq. ok reports whether it
// has committed; a false ok with a nil error means the submission is
// still pending.
func (m *Market) Outcome(seq int) (OutcomeRecord, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if rec, ok := m.outcomes[seq]; ok {
		return rec, true, nil
	}
	if seq < 0 || seq >= m.next {
		return OutcomeRecord{}, false, ErrUnknownSeq
	}
	return OutcomeRecord{}, false, nil
}

// Wait blocks until seq commits, ctx is done, or the market stops.
func (m *Market) Wait(ctx context.Context, seq int) (OutcomeRecord, error) {
	m.mu.Lock()
	if rec, ok := m.outcomes[seq]; ok {
		m.mu.Unlock()
		return rec, nil
	}
	if seq < 0 || seq >= m.next {
		m.mu.Unlock()
		return OutcomeRecord{}, ErrUnknownSeq
	}
	ch, ok := m.waiters[seq]
	if !ok {
		ch = make(chan struct{})
		m.waiters[seq] = ch
	}
	m.mu.Unlock()

	select {
	case <-ch:
		m.mu.Lock()
		rec := m.outcomes[seq]
		m.mu.Unlock()
		return rec, nil
	case <-ctx.Done():
		return OutcomeRecord{}, context.Cause(ctx)
	case <-m.killCh:
		return OutcomeRecord{}, ErrClosed
	case <-m.consumerDone:
		// Graceful close commits everything solvable first; reaching
		// here means the market stopped with seq still pending.
		m.mu.Lock()
		rec, ok := m.outcomes[seq]
		m.mu.Unlock()
		if ok {
			return rec, nil
		}
		return OutcomeRecord{}, ErrClosed
	}
}

// ledgerLocked folds committed outcomes, in sequence order, into
// per-client cumulative payments. Summing in a canonical order keeps
// the ledger bit-identical however commits interleaved. Caller holds
// m.mu.
func (m *Market) ledgerLocked() map[int]float64 {
	seqs := make([]int, 0, len(m.outcomes))
	for seq := range m.outcomes {
		seqs = append(seqs, seq)
	}
	sort.Ints(seqs)
	out := make(map[int]float64)
	for _, seq := range seqs {
		for _, w := range m.outcomes[seq].Winners {
			out[w.Client] += w.Payment
		}
	}
	return out
}

// Ledger returns the per-client cumulative payments of every committed
// outcome.
func (m *Market) Ledger() map[int]float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ledgerLocked()
}

// Counts returns the market's load figures: the next sequence number,
// committed outcomes, pending (acknowledged, uncommitted) submissions,
// and the solve queue depth.
func (m *Market) Counts() (next, committed, pending, queueDepth int) {
	m.mu.Lock()
	next, committed, pending = m.next, len(m.outcomes), len(m.pending)
	m.mu.Unlock()
	return next, committed, pending, m.svc.QueueDepth()
}

// Close drains and stops the market: no new submissions, queued work is
// solved and committed, the WAL is synced and closed. Idempotent; safe
// after a kill.
func (m *Market) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		<-m.consumerDone
		return nil
	}
	m.closed = true
	m.mu.Unlock()

	m.svc.Close()
	<-m.consumerDone

	m.mu.Lock()
	defer m.mu.Unlock()
	// Wake waiters on submissions that will never commit in this
	// process (killed mid-queue or canceled): Wait's consumerDone arm
	// handles them, but close their channels so no waiter sleeps on a
	// market with no consumer.
	for seq, ch := range m.waiters {
		close(ch)
		delete(m.waiters, seq)
	}
	if m.log != nil && !m.killedFlag.Load() {
		return m.log.Close()
	}
	return nil
}
