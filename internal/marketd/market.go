// Package marketd is the durable market daemon: a long-lived auction
// service whose submitted bids, solved outcomes, and payment ledger
// survive process death.
//
// Architecturally it is a thin state machine wrapped around two
// existing layers: internal/batch solves (a bounded-queue worker pool
// over pooled engines), and internal/wal remembers (an append-only
// checksummed event log). The market's own job is exactly-once
// bookkeeping across crashes:
//
//   - Submit assigns a sequence number, appends a bid record to the WAL
//     (the acknowledgment is the durability point), then enqueues the
//     instance under that sequence via Service.SubmitSeq;
//   - the consumer drains Service.Results and commits each outcome:
//     per-winner pay records, then a self-contained outcome record —
//     the commit marker — and only then installs the outcome and its
//     ledger effects in memory;
//   - Open replays the log: committed outcomes are restored verbatim
//     (never re-solved, so payments can never drift), orphan pay
//     records without a commit marker are discarded, duplicate records
//     are dropped by sequence number, and bid records with no commit
//     marker are re-submitted under their original sequence numbers.
//
// Because the solver is deterministic, a re-solved pending bid commits
// the byte-identical outcome record the lost solve would have written;
// replay is therefore bit-identical: the recovered state equals the
// state of an uninterrupted run, with zero lost or duplicated sequence
// numbers. The crash-point matrix (see Config.Crash and the test/e2e
// suite) pins this for every interleaving of the commit protocol.
//
// The serving fast path layers three optimizations on that protocol
// without changing its semantics:
//
//   - segmented WAL with checkpoints (Config.CheckpointEvery): every N
//     commits the market rotates into a checkpoint-flagged segment and
//     writes a snapshot record — folded ledger, retained outcomes, and
//     pending submissions — then prunes the covered segments. Recovery
//     opens at the newest checkpoint and replays only the tail, so
//     restart cost is O(tail), not O(history);
//   - group commit (Config.GroupCommit): appends buffer and a dedicated
//     syncer coalesces concurrent Submit/commit durability waits into
//     one fsync, so SyncEvery=1 durability no longer serializes
//     producers on disk latency;
//   - append-style record encoding (encode.go): the per-record
//     json.Marshal trees on the append and replay paths are replaced by
//     pooled byte-identical encoders, dropping allocations per
//     committed auction to a small constant.
package marketd

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/fedauction/afl/internal/batch"
	"github.com/fedauction/afl/internal/core"
	"github.com/fedauction/afl/internal/obs"
	"github.com/fedauction/afl/internal/wal"
)

// Crash points of the commit protocol, in protocol order. Config.Crash
// is consulted at each; returning true kills the market on the spot —
// the in-process equivalent of SIGKILL — leaving the WAL exactly as the
// protocol had it at that instant. The restart suite drives every point
// and asserts recovery converges to the uninterrupted golden state.
const (
	// CrashBidLogged fires after a submission's bid record is durably
	// appended, before it reaches the solve queue.
	CrashBidLogged = "bid_logged"
	// CrashOutcomeSolved fires after the solver produced an outcome,
	// before any of its ledger records are appended.
	CrashOutcomeSolved = "outcome_solved"
	// CrashLedgerPartial fires after the first pay record of a multi-
	// winner outcome, leaving the ledger write-ahead torn mid-group.
	CrashLedgerPartial = "ledger_partial"
	// CrashPreCommit fires after every pay record, before the outcome
	// commit marker.
	CrashPreCommit = "pre_commit"
	// CrashPostCommit fires after the commit marker is appended and the
	// outcome installed — the crash that must change nothing on replay.
	CrashPostCommit = "post_commit"
	// CrashCheckpointRotated fires between the rotation into a fresh
	// checkpoint-flagged segment and the snapshot record append, leaving
	// an empty checkpoint segment that recovery must discard as debris.
	CrashCheckpointRotated = "checkpoint_rotated"
	// CrashCheckpointWritten fires after the snapshot record is durable,
	// before the covered segments are pruned — recovery starts at the new
	// checkpoint and the stale history is swept on a later checkpoint.
	CrashCheckpointWritten = "checkpoint_written"
)

// WALFileName is the log file the market keeps inside Config.Dir.
const WALFileName = "market.wal"

var (
	// ErrClosed is returned by operations on a closed or killed market.
	ErrClosed = errors.New("marketd: market closed")
	// ErrUnknownSeq is returned by Wait and Outcome for a sequence
	// number the market never issued.
	ErrUnknownSeq = errors.New("marketd: unknown sequence number")
	// ErrPruned is returned by Wait and Outcome for a committed sequence
	// number whose outcome the retention policy (Config.RetainOutcomes)
	// has evicted. Its payments remain in the ledger; only the
	// per-auction record is gone.
	ErrPruned = errors.New("marketd: outcome pruned from history")
)

// Config configures a market.
type Config struct {
	// Dir is the durability directory; the market keeps WALFileName
	// inside it. Empty runs the market volatile (no WAL, no recovery) —
	// the pre-durability Service behaviour, useful for benchmarks.
	Dir string
	// Workers and Queue follow batch.Options: pool width (0 selects
	// GOMAXPROCS) and submission queue bound (0 selects twice the
	// workers).
	Workers, Queue int
	// SyncEvery batches WAL fsyncs (see wal.Options); 0 or 1 syncs every
	// record, which makes every acknowledged submission durable. Ignored
	// under GroupCommit, where durability is per commit, not per record.
	SyncEvery int
	// NoSync disables fsync (tests only).
	NoSync bool
	// GroupCommit enables cross-request fsync coalescing: appends buffer
	// and a dedicated syncer goroutine batches every in-flight Submit and
	// outcome commit into one fsync, so full durability no longer
	// serializes producers on disk latency. Acknowledgments still happen
	// only after the covering fsync returns.
	GroupCommit bool
	// SyncInterval caps group-commit latency trading it for batch size:
	// the syncer waits up to this long for more commits to pile onto the
	// pending fsync. 0 syncs as soon as the syncer gets the CPU.
	SyncInterval time.Duration
	// CheckpointEvery writes a checkpoint — rotate into a checkpoint
	// segment, append a snapshot of the folded state, prune covered
	// segments — every this many committed outcomes. 0 disables
	// checkpoints: the WAL is a single unbounded segment (the legacy
	// layout) and recovery replays all of history.
	CheckpointEvery int
	// SegmentBytes and SegmentRecords bound plain segment size between
	// checkpoints (see wal.DirOptions); 0 disables that trigger.
	SegmentBytes   int64
	SegmentRecords int
	// RetainOutcomes bounds the in-memory and checkpointed per-auction
	// history: once the contiguous committed prefix outgrows it, the
	// oldest outcomes are evicted and served as ErrPruned (HTTP 410).
	// Their payments stay folded in the ledger. 0 retains everything.
	RetainOutcomes int
	// RatePerSec and Burst configure the per-client token bucket applied
	// at the HTTP edge. RatePerSec <= 0 disables rate limiting; Burst
	// <= 0 selects max(1, ceil(RatePerSec)).
	RatePerSec float64
	Burst      int
	// MaxPending bounds admission at the HTTP edge: submissions are
	// rejected with 503 while more than MaxPending acknowledged
	// submissions await their outcome. <= 0 disables the check.
	MaxPending int
	// Observer receives the market's events (market_recovered, wal_fault,
	// rate_limited, admission_rejected) in addition to the batch and
	// per-auction streams. Nil disables instrumentation.
	Observer obs.Observer
	// Now supplies timestamps for event latencies and the rate limiter;
	// nil selects time.Now.
	Now func() time.Time
	// Rule, when non-nil, overrides every submission's Cfg.PaymentRule at
	// Submit time, BEFORE the bid record is logged — the WAL then carries
	// the overridden rule, so a recovery re-solve of a pending bid uses
	// the same rule the original solve would have, regardless of the
	// options the reopened market is given. Nil solves each submission
	// under its own Cfg.
	Rule *core.PaymentRule
	// Solver, when non-nil, overrides every submission's solver tier at
	// Submit time, with the same before-logging semantics as Rule: the
	// bid record carries the tier, so recovery re-solves pending bids
	// under it. Nil solves each submission under its own Instance.Solver.
	Solver *core.Solver
	// Crash is test instrumentation: consulted at each crash point with
	// the submission's sequence number; returning true kills the market
	// as if the process died there. Nil (production) never crashes.
	Crash func(point string, seq int) bool
}

// Market is a durable auction market service. All methods are safe for
// concurrent use.
type Market struct {
	cfg     Config
	svc     *batch.Service
	cancel  context.CancelFunc
	log     *wal.DirLog // nil when volatile
	limiter *tokenBucket

	killOnce     sync.Once
	killedFlag   atomic.Bool
	killCh       chan struct{}
	consumerDone chan struct{}

	mu       sync.Mutex
	closed   bool
	next     int
	pending  map[int]batch.Instance // acknowledged, not yet committed
	outcomes map[int]OutcomeRecord  // retained window: seqs in [base, …)
	waiters  map[int]chan struct{}
	faults   int // WAL anomalies absorbed during recovery

	// Incremental ledger: the fold of every committed outcome with seq <
	// foldedNext, maintained frontier-style (strictly ascending seq
	// order) so it is bit-identical to the full re-derivation the ledger
	// used to be. base marks the retention floor: outcomes with seq <
	// base are evicted (always < foldedNext, so their payments are in
	// the ledger).
	ledger     map[int]float64
	foldedNext int
	base       int

	commitsSinceCkpt int    // commits since the last checkpoint
	lastCkptSeq      int    // snapshot horizon of the newest checkpoint, -1 if none
	recoveredTail    int    // records replayed by the last recovery
	enc              []byte // append-encoder scratch, reused under mu
}

// Open starts (or restarts) a market. With a durability directory it
// replays the WAL first: committed outcomes and the ledger are restored
// verbatim, torn tails and duplicate records are absorbed (counted in
// RecoveredFaults), and logged-but-uncommitted bids are re-submitted
// under their original sequence numbers before Open returns. ctx bounds
// the market's lifetime; cancel it or call Close.
func Open(ctx context.Context, cfg Config) (*Market, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	base, cancel := context.WithCancel(ctx)
	m := &Market{
		cfg:          cfg,
		cancel:       cancel,
		killCh:       make(chan struct{}),
		consumerDone: make(chan struct{}),
		pending:      make(map[int]batch.Instance),
		outcomes:     make(map[int]OutcomeRecord),
		waiters:      make(map[int]chan struct{}),
		ledger:       make(map[int]float64),
		lastCkptSeq:  -1,
	}
	if cfg.RatePerSec > 0 {
		m.limiter = newTokenBucket(cfg.RatePerSec, cfg.Burst, cfg.Now)
	}
	m.svc = batch.NewService(base, batch.Options{
		Workers:  cfg.Workers,
		Queue:    cfg.Queue,
		Observer: cfg.Observer,
		Now:      cfg.Now,
	})

	var pendingInst map[int]batch.Instance
	if cfg.Dir != "" {
		var start time.Time
		if cfg.Observer != nil {
			start = cfg.Now()
		}
		var err error
		pendingInst, err = m.recover()
		if err != nil {
			cancel()
			m.svc.Close()
			return nil, err
		}
		if o := cfg.Observer; o != nil {
			o.Observe(obs.Event{
				Kind: obs.EvMarketRecovered, Client: -1, Bid: -1,
				Value: float64(len(m.outcomes)), Round: len(pendingInst),
				OK: m.faults == 0, Dur: cfg.Now().Sub(start),
			})
		}
	}

	go m.consume()

	// Re-submit survivors under their original sequence numbers, lowest
	// first. The consumer is already draining, so queue backpressure
	// cannot deadlock the replay however large the backlog is.
	seqs := make([]int, 0, len(pendingInst))
	for seq := range pendingInst {
		seqs = append(seqs, seq)
	}
	sort.Ints(seqs)
	for _, seq := range seqs {
		if err := m.svc.SubmitSeq(ctx, seq, pendingInst[seq]); err != nil {
			m.Close()
			return nil, fmt.Errorf("marketd: replaying seq %d: %w", seq, err)
		}
	}
	return m, nil
}

// recover opens the WAL directory, replays its records into the
// market's state, and returns the logged-but-uncommitted instances
// keyed by sequence number. When the directory has a valid checkpoint,
// the wal layer starts replay there: the first record is the snapshot,
// every later record the tail. Replay peeks each record's envelope and
// fully decodes only what it must — outcome bodies (installed), the
// checkpoint (restored), and the bid bodies of submissions that are
// still pending when the log ends; pay records and superseded bids
// never pay for a decode. Runs before the consumer starts, so no
// locking is needed.
func (m *Market) recover() (map[int]batch.Instance, error) {
	pendingInst := make(map[int]batch.Instance)
	pendingRaw := make(map[int][]byte) // seq -> retained bid payload
	stagedPays := make(map[int]int)    // seq -> pay records seen before its commit
	first := true
	replay := func(payload []byte) error {
		typ, seq, err := peekEnvelope(payload)
		if err != nil {
			// Fall back to the full decoder for its error message.
			if _, derr := decodeRecord(payload); derr != nil {
				return derr
			}
			return err
		}
		wasFirst := first
		first = false
		switch typ {
		case recCheckpoint:
			if !wasFirst {
				return fmt.Errorf("marketd: checkpoint record mid-log at seq %d", seq)
			}
			ckpt, err := decodeCheckpoint(payload)
			if err != nil {
				return err
			}
			restored, err := m.restoreCheckpoint(ckpt)
			if err != nil {
				return err
			}
			for s, inst := range restored {
				pendingInst[s] = inst
			}
			return nil
		case recBid:
			if seq < m.base {
				m.fault("dup_record", float64(seq))
				return nil
			}
			if _, done := m.outcomes[seq]; done {
				m.fault("dup_record", float64(seq))
				return nil
			}
			if _, dup := pendingInst[seq]; dup {
				m.fault("dup_record", float64(seq))
				return nil
			}
			if _, dup := pendingRaw[seq]; dup {
				m.fault("dup_record", float64(seq))
				return nil
			}
			pendingRaw[seq] = append([]byte(nil), payload...)
			if seq >= m.next {
				m.next = seq + 1
			}
			return nil
		case recPay:
			if seq < m.base {
				m.fault("dup_record", float64(seq))
				return nil
			}
			if _, done := m.outcomes[seq]; done {
				m.fault("dup_record", float64(seq))
				return nil
			}
			stagedPays[seq]++
			return nil
		case recOutcome:
			if seq < m.base {
				m.fault("dup_record", float64(seq))
				return nil
			}
			if _, done := m.outcomes[seq]; done {
				m.fault("dup_record", float64(seq))
				return nil
			}
			r, err := decodeRecord(payload)
			if err != nil {
				return err
			}
			if r.Outcome == nil {
				return fmt.Errorf("marketd: outcome record %d without a body", seq)
			}
			m.installLocked(*r.Outcome)
			delete(pendingInst, seq)
			delete(pendingRaw, seq)
			delete(stagedPays, seq)
			if seq >= m.next {
				m.next = seq + 1
			}
			return nil
		default:
			return fmt.Errorf("marketd: unknown WAL record type %q", typ)
		}
	}

	path := filepath.Join(m.cfg.Dir, WALFileName)
	log, stats, err := wal.OpenDir(path, m.walOptions(), replay)
	if err != nil {
		return nil, err
	}
	m.log = log
	m.recoveredTail = stats.TailRecords
	if stats.DroppedBytes > 0 {
		m.fault("torn_tail", float64(stats.DroppedBytes))
	}

	// Bid records with no commit marker: decode the retained payloads of
	// the true survivors, lowest sequence first.
	raws := make([]int, 0, len(pendingRaw))
	for seq := range pendingRaw {
		raws = append(raws, seq)
	}
	sort.Ints(raws)
	for _, seq := range raws {
		r, err := decodeRecord(pendingRaw[seq])
		if err != nil {
			return nil, err
		}
		var cfg core.Config
		if r.Cfg != nil {
			cfg = r.Cfg.ToConfig()
		}
		solver, err := core.ParseSolver(r.Solver)
		if err != nil {
			return nil, fmt.Errorf("marketd: bid record %d: %w", seq, err)
		}
		pendingInst[seq] = batch.Instance{Bids: r.Bids, Cfg: cfg, Solver: solver}
	}

	// The pending set must live in m.pending too: a checkpoint written
	// after this restart re-homes these submissions into its snapshot,
	// which is what makes pruning their original bid records safe.
	for seq, inst := range pendingInst {
		m.pending[seq] = inst
	}

	// Pay records whose commit marker never reached disk: the ledger
	// write-ahead of a solve that will be re-done. Discarded — their
	// seqs are still in pendingInst, so the re-solve re-writes them.
	orphans := make([]int, 0, len(stagedPays))
	for seq := range stagedPays {
		orphans = append(orphans, seq)
	}
	sort.Ints(orphans)
	for _, seq := range orphans {
		m.fault("orphan_payment", float64(seq))
	}
	return pendingInst, nil
}

// walOptions maps the market configuration onto the WAL directory
// options, wiring rotation and group-commit telemetry to the observer.
func (m *Market) walOptions() wal.DirOptions {
	opts := wal.DirOptions{
		SyncEvery:      m.cfg.SyncEvery,
		NoSync:         m.cfg.NoSync,
		SegmentBytes:   m.cfg.SegmentBytes,
		SegmentRecords: m.cfg.SegmentRecords,
		GroupCommit:    m.cfg.GroupCommit,
		SyncInterval:   m.cfg.SyncInterval,
	}
	if o := m.cfg.Observer; o != nil {
		opts.OnRotate = func(seg int, checkpoint bool) {
			o.Observe(obs.Event{
				Kind: obs.EvWALSegmentRotated, Client: -1, Bid: -1,
				Value: float64(seg), OK: checkpoint,
			})
		}
		opts.OnGroupCommit = func(records int, dur time.Duration) {
			o.Observe(obs.Event{
				Kind: obs.EvGroupCommit, Client: -1, Bid: -1,
				Value: float64(records), Dur: dur,
			})
		}
	}
	return opts
}

// fault counts one absorbed WAL anomaly and reports it to the observer.
func (m *Market) fault(label string, value float64) {
	m.faults++
	if o := m.cfg.Observer; o != nil {
		o.Observe(obs.Event{
			Kind: obs.EvWALFault, Client: -1, Bid: -1, Label: label, Value: value,
		})
	}
}

// installLocked commits an outcome record to in-memory state: the
// outcome index, any waiters, and the incremental ledger. The ledger
// folds strictly along the contiguous committed frontier (ascending
// seq) — float addition is order-sensitive, and commit order varies
// with worker scheduling while frontier order does not, so the
// incremental fold stays bit-identical to a full re-derivation.
// Outcomes past a gap wait in the index until the frontier reaches
// them. Once folded, outcomes older than the retention window are
// evicted. Callers hold m.mu (or, during recovery, exclusive access).
func (m *Market) installLocked(rec OutcomeRecord) {
	m.outcomes[rec.Seq] = rec
	delete(m.pending, rec.Seq)
	if ch, ok := m.waiters[rec.Seq]; ok {
		close(ch)
		delete(m.waiters, rec.Seq)
	}
	for {
		next, ok := m.outcomes[m.foldedNext]
		if !ok {
			break
		}
		for _, w := range next.Winners {
			m.ledger[w.Client] += w.Payment
		}
		m.foldedNext++
	}
	if r := m.cfg.RetainOutcomes; r > 0 {
		for m.foldedNext-m.base > r {
			delete(m.outcomes, m.base)
			m.base++
		}
	}
	m.commitsSinceCkpt++
}

// crashLocked consults the crash-point hook; on true it kills the
// market (caller holds m.mu) and reports that the operation must abort.
func (m *Market) crashLocked(point string, seq int) bool {
	if m.cfg.Crash != nil && m.cfg.Crash(point, seq) {
		m.killLocked()
		return true
	}
	return false
}

// killLocked is the in-process SIGKILL: stop the workers, wake every
// blocked caller, and close the WAL file without flushing its buffer —
// whatever the commit protocol had durably written stays, everything
// else is gone. Caller holds m.mu.
func (m *Market) killLocked() {
	m.killOnce.Do(func() {
		m.killedFlag.Store(true)
		m.cancel()
		close(m.killCh)
		if m.log != nil {
			m.log.Abort()
		}
	})
}

// Killed reports whether the market died at a crash point.
func (m *Market) Killed() bool { return m.killedFlag.Load() }

// Dead returns a channel closed when the market dies at a crash point.
// A graceful Close never closes it; daemons select on it to exit when
// the market is gone.
func (m *Market) Dead() <-chan struct{} { return m.killCh }

// RecoveredFaults returns the number of WAL anomalies (torn tail,
// duplicate records, orphan payments) absorbed during recovery.
func (m *Market) RecoveredFaults() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.faults
}

// Submit acknowledges one auction submission and returns its sequence
// number. On a durable market the bid record is appended to the WAL
// before the acknowledgment — under SyncEvery <= 1 an acked submission
// survives any crash — and client names the submitter for the audit
// trail (it does not affect the auction). Submit then blocks under the
// service's queue backpressure until the instance is enqueued, ctx is
// done, or the market closes. A non-nil error with a valid sequence
// number (>= 0) means the submission is durably logged but was not
// queued in this process's lifetime; it will be solved on the next
// Open.
func (m *Market) Submit(ctx context.Context, client string, inst batch.Instance) (int, error) {
	seqs, err := m.submitAll(ctx, client, []batch.Instance{inst})
	if len(seqs) == 1 {
		return seqs[0], err
	}
	return -1, err
}

// SubmitBatch acknowledges several submissions at once, assigning them
// consecutive sequence numbers. All bid records ride one durability
// point — under group commit, a single coalesced fsync — which is what
// makes batched ingest cheaper than a loop of Submits. On error the
// returned slice still carries a valid sequence number (>= 0) for every
// submission that was durably acknowledged.
func (m *Market) SubmitBatch(ctx context.Context, client string, insts []batch.Instance) ([]int, error) {
	return m.submitAll(ctx, client, insts)
}

func (m *Market) submitAll(ctx context.Context, client string, insts []batch.Instance) ([]int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(insts) == 0 {
		return nil, nil
	}
	for i := range insts {
		if m.cfg.Rule != nil {
			insts[i].Cfg.PaymentRule = *m.cfg.Rule
		}
		if m.cfg.Solver != nil {
			insts[i].Solver = *m.cfg.Solver
		}
		if insts[i].Set != nil && insts[i].Bids == nil {
			// Columnar submissions are solved through the shared Set (the batch
			// layer's warm-start path), but the WAL speaks rows: materialize
			// them once here so the logged record is byte-identical to a row
			// submission of the same population.
			insts[i].Bids = insts[i].Set.Bids()
		}
	}

	m.mu.Lock()
	if m.closed || m.killedFlag.Load() {
		m.mu.Unlock()
		return nil, ErrClosed
	}
	seqs := make([]int, len(insts))
	for i, inst := range insts {
		seq := m.next
		if m.log != nil {
			payload, err := appendBidRecord(m.enc[:0], seq, client, inst)
			m.enc = payload[:0]
			if err == nil {
				err = m.log.Append(payload)
			}
			if err != nil {
				m.mu.Unlock()
				for j := i; j < len(seqs); j++ {
					seqs[j] = -1
				}
				return seqs, err
			}
		}
		m.next = seq + 1
		m.pending[seq] = inst
		seqs[i] = seq
	}
	group := m.log != nil && m.cfg.GroupCommit
	if group {
		// Wait for the covering fsync outside the lock, so concurrent
		// submitters and the consumer's commits pile onto the same group
		// commit instead of queueing behind this one's disk latency.
		m.mu.Unlock()
		if err := m.log.Commit(); err != nil {
			m.mu.Lock()
			m.killLocked() // acknowledged nothing; a failing log is a dead market
			for _, seq := range seqs {
				delete(m.pending, seq)
			}
			m.mu.Unlock()
			return nil, err
		}
		m.mu.Lock()
	}
	crashed := false
	for _, seq := range seqs {
		if m.crashLocked(CrashBidLogged, seq) {
			crashed = true
			break
		}
	}
	m.mu.Unlock()
	if crashed {
		return seqs, nil // durably acked; the next Open will solve them
	}

	// The enqueue happens outside the lock: queue backpressure must
	// never block the consumer's commits (which need the lock).
	for i, seq := range seqs {
		if err := m.svc.SubmitSeq(ctx, seq, insts[i]); err != nil {
			return seqs, err
		}
	}
	return seqs, nil
}

// consume drains the service's outcomes and commits each one.
func (m *Market) consume() {
	defer close(m.consumerDone)
	for {
		select {
		case oc, ok := <-m.svc.Results():
			if !ok {
				return
			}
			if !m.commit(oc) {
				return
			}
		case <-m.killCh:
			return
		}
	}
}

// commit runs the durable commit protocol for one outcome. Reports
// false when the market died at a crash point mid-protocol.
func (m *Market) commit(oc batch.Outcome) bool {
	if oc.Err != nil && errors.Is(oc.Err, core.ErrCanceled) {
		// A cancellation is not a terminal outcome: the bid record stays
		// pending in the WAL and the next Open re-solves it. Never
		// persisted, so a canceled solve can never shadow a real one.
		return !m.killedFlag.Load()
	}
	rec := recordFromOutcome(oc)
	m.mu.Lock()
	if _, dup := m.outcomes[rec.Seq]; dup || rec.Seq < m.base {
		// Exactly-once guard: a sequence number commits once per market
		// lifetime, whatever the scheduler delivered.
		m.mu.Unlock()
		return true
	}
	if m.crashLocked(CrashOutcomeSolved, rec.Seq) {
		m.mu.Unlock()
		return false
	}
	if m.log != nil {
		for i, w := range rec.Winners {
			payload, err := appendPayRecord(m.enc[:0], rec.Seq, w)
			m.enc = payload[:0]
			if err == nil {
				err = m.log.Append(payload)
			}
			if err != nil {
				m.killLocked() // a failing log is a dead market, not a silent one
				m.mu.Unlock()
				return false
			}
			if i == 0 && m.crashLocked(CrashLedgerPartial, rec.Seq) {
				m.mu.Unlock()
				return false
			}
		}
		if m.crashLocked(CrashPreCommit, rec.Seq) {
			m.mu.Unlock()
			return false
		}
		payload, err := appendOutcomeRecord(m.enc[:0], &rec)
		m.enc = payload[:0]
		if err == nil {
			err = m.log.Append(payload)
		}
		if err != nil {
			m.killLocked()
			m.mu.Unlock()
			return false
		}
		if m.cfg.GroupCommit {
			// Make the whole commit group durable before installing,
			// waiting outside the lock so concurrent Submits coalesce onto
			// the same fsync instead of serializing behind it.
			m.mu.Unlock()
			if err := m.log.Commit(); err != nil {
				m.mu.Lock()
				m.killLocked()
				m.mu.Unlock()
				return false
			}
			m.mu.Lock()
			if _, dup := m.outcomes[rec.Seq]; dup {
				m.mu.Unlock()
				return true
			}
		}
	}
	m.installLocked(rec)
	ok := true
	if m.log != nil && m.cfg.CheckpointEvery > 0 && m.commitsSinceCkpt >= m.cfg.CheckpointEvery {
		ok = m.checkpointLocked()
	}
	if ok && m.crashLocked(CrashPostCommit, rec.Seq) {
		ok = false
	}
	m.mu.Unlock()
	return ok
}

// checkpointLocked writes one checkpoint: rotate into a fresh
// checkpoint-flagged segment, append the folded-state snapshot as its
// first record, force it durable, then prune every covered segment.
// A crash at any point is safe: before the snapshot record lands, the
// empty checkpoint segment is recovery debris (discarded, full replay
// from the previous start); after it lands, recovery starts at the new
// checkpoint whether or not the prune ran. Reports false when the
// market died (crash point or log failure). Caller holds m.mu.
func (m *Market) checkpointLocked() bool {
	var start time.Time
	if m.cfg.Observer != nil {
		start = m.cfg.Now()
	}
	if err := m.log.Rotate(true); err != nil {
		m.killLocked()
		return false
	}
	if m.crashLocked(CrashCheckpointRotated, m.next) {
		return false
	}
	payload, err := m.encodeCheckpointLocked()
	if err == nil {
		err = m.log.AppendDeferred(payload)
	}
	if err == nil {
		err = m.log.Sync()
	}
	if err != nil {
		m.killLocked()
		if o := m.cfg.Observer; o != nil {
			o.Observe(obs.Event{
				Kind: obs.EvWALCheckpoint, Client: -1, Bid: -1,
				Value: float64(m.next), OK: false,
			})
		}
		return false
	}
	m.lastCkptSeq = m.next
	m.commitsSinceCkpt = 0
	if m.crashLocked(CrashCheckpointWritten, m.next) {
		return false
	}
	pruned, err := m.log.Prune()
	if err != nil {
		m.killLocked()
		return false
	}
	if o := m.cfg.Observer; o != nil {
		o.Observe(obs.Event{
			Kind: obs.EvWALCheckpoint, Client: -1, Bid: -1,
			Value: float64(m.lastCkptSeq), Round: pruned, OK: true,
			Dur: m.cfg.Now().Sub(start),
		})
	}
	return true
}

// Outcome returns the committed outcome for seq. ok reports whether it
// has committed; a false ok with a nil error means the submission is
// still pending. A committed outcome evicted by the retention policy
// answers ErrPruned.
func (m *Market) Outcome(seq int) (OutcomeRecord, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if rec, ok := m.outcomes[seq]; ok {
		return rec, true, nil
	}
	if seq >= 0 && seq < m.base {
		return OutcomeRecord{}, false, ErrPruned
	}
	if seq < 0 || seq >= m.next {
		return OutcomeRecord{}, false, ErrUnknownSeq
	}
	return OutcomeRecord{}, false, nil
}

// Wait blocks until seq commits, ctx is done, or the market stops.
func (m *Market) Wait(ctx context.Context, seq int) (OutcomeRecord, error) {
	m.mu.Lock()
	if rec, ok := m.outcomes[seq]; ok {
		m.mu.Unlock()
		return rec, nil
	}
	if seq >= 0 && seq < m.base {
		m.mu.Unlock()
		return OutcomeRecord{}, ErrPruned
	}
	if seq < 0 || seq >= m.next {
		m.mu.Unlock()
		return OutcomeRecord{}, ErrUnknownSeq
	}
	ch, ok := m.waiters[seq]
	if !ok {
		ch = make(chan struct{})
		m.waiters[seq] = ch
	}
	m.mu.Unlock()

	select {
	case <-ch:
		m.mu.Lock()
		rec := m.outcomes[seq]
		m.mu.Unlock()
		return rec, nil
	case <-ctx.Done():
		return OutcomeRecord{}, context.Cause(ctx)
	case <-m.killCh:
		return OutcomeRecord{}, ErrClosed
	case <-m.consumerDone:
		// Graceful close commits everything solvable first; reaching
		// here means the market stopped with seq still pending.
		m.mu.Lock()
		rec, ok := m.outcomes[seq]
		m.mu.Unlock()
		if ok {
			return rec, nil
		}
		return OutcomeRecord{}, ErrClosed
	}
}

// ledgerLocked returns per-client cumulative payments: a copy of the
// incrementally folded frontier ledger, plus an on-demand fold of any
// committed outcomes waiting past a sequence gap. Both folds run in
// ascending sequence order, so the result is bit-identical to the full
// re-derivation this used to be, however commits interleaved. Caller
// holds m.mu.
func (m *Market) ledgerLocked() map[int]float64 {
	out := make(map[int]float64, len(m.ledger))
	for c, p := range m.ledger {
		out[c] = p
	}
	var tail []int
	for seq := range m.outcomes {
		if seq >= m.foldedNext {
			tail = append(tail, seq)
		}
	}
	sort.Ints(tail)
	for _, seq := range tail {
		for _, w := range m.outcomes[seq].Winners {
			out[w.Client] += w.Payment
		}
	}
	return out
}

// Ledger returns the per-client cumulative payments of every committed
// outcome.
func (m *Market) Ledger() map[int]float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ledgerLocked()
}

// Counts returns the market's load figures: the next sequence number,
// committed outcomes (including ones the retention policy has since
// evicted — this is the lifetime total, not the retained window),
// pending (acknowledged, uncommitted) submissions, and the solve queue
// depth.
func (m *Market) Counts() (next, committed, pending, queueDepth int) {
	m.mu.Lock()
	next, committed, pending = m.next, len(m.outcomes)+m.base, len(m.pending)
	m.mu.Unlock()
	return next, committed, pending, m.svc.QueueDepth()
}

// WALInfo describes the durability directory of a market: its on-disk
// footprint, segment layout, and how much work the last recovery did.
type WALInfo struct {
	// Bytes is the total size of all live WAL segments.
	Bytes int64 `json:"wal_bytes"`
	// Segments is the number of live segment files.
	Segments int `json:"wal_segments"`
	// LastCheckpointSeq is the snapshot horizon (next sequence number)
	// of the newest checkpoint, -1 when no checkpoint exists.
	LastCheckpointSeq int `json:"last_checkpoint_seq"`
	// TailReplayed is the number of records the last recovery replayed
	// after its starting checkpoint (all of history when there was
	// none) — the restart-cost figure checkpoints exist to bound.
	TailReplayed int `json:"tail_replayed"`
	// Syncs counts fsyncs since open; with group commit, dividing the
	// commit count by it gives the realized coalescing factor.
	Syncs int64 `json:"wal_syncs"`
	// Records counts WAL records replayed at open plus appended since.
	Records int `json:"wal_records"`
}

// WALInfo reports the durability directory's current footprint. A
// volatile market returns the zero value.
func (m *Market) WALInfo() WALInfo {
	m.mu.Lock()
	last := m.lastCkptSeq
	tail := m.recoveredTail
	m.mu.Unlock()
	info := WALInfo{LastCheckpointSeq: last, TailReplayed: tail}
	if m.log != nil {
		st := m.log.Stats()
		info.Bytes = st.TotalBytes
		info.Segments = st.Segments
		info.Syncs = st.Syncs
		info.Records = st.Records
	}
	return info
}

// Close drains and stops the market: no new submissions, queued work is
// solved and committed, the WAL is synced and closed. Idempotent; safe
// after a kill.
func (m *Market) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		<-m.consumerDone
		return nil
	}
	m.closed = true
	m.mu.Unlock()

	m.svc.Close()
	<-m.consumerDone

	m.mu.Lock()
	defer m.mu.Unlock()
	// Wake waiters on submissions that will never commit in this
	// process (killed mid-queue or canceled): Wait's consumerDone arm
	// handles them, but close their channels so no waiter sleeps on a
	// market with no consumer.
	for seq, ch := range m.waiters {
		close(ch)
		delete(m.waiters, seq)
	}
	if m.log != nil && !m.killedFlag.Load() {
		return m.log.Close()
	}
	return nil
}
