package marketd

import (
	"testing"
	"time"
)

// fakeClock is a hand-advanced time source: the limiter's arithmetic is
// pure in the injected now, so these tables never sleep.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

// TestTokenBucketTable drives one client through a scripted sequence of
// admissions and virtual-time advances.
func TestTokenBucketTable(t *testing.T) {
	type step struct {
		advance   time.Duration
		wantOK    bool
		wantRetry time.Duration // 0 = don't care (admitted)
	}
	cases := []struct {
		name  string
		rate  float64
		burst int
		steps []step
	}{
		{
			name: "burst_then_starve", rate: 1, burst: 3,
			steps: []step{
				{0, true, 0}, {0, true, 0}, {0, true, 0},
				// Bucket empty: a full token is one second away.
				{0, false, time.Second},
				// Half a token accrued: half a second to go.
				{500 * time.Millisecond, false, 500 * time.Millisecond},
				{500 * time.Millisecond, true, 0},
				{0, false, time.Second},
			},
		},
		{
			name: "refill_caps_at_burst", rate: 10, burst: 2,
			steps: []step{
				{0, true, 0}, {0, true, 0},
				// An hour idle refills to burst, not to rate*3600.
				{time.Hour, true, 0}, {0, true, 0},
				{0, false, 100 * time.Millisecond},
			},
		},
		{
			name: "fractional_rate", rate: 0.5, burst: 1,
			steps: []step{
				{0, true, 0},
				{0, false, 2 * time.Second},
				{time.Second, false, time.Second},
				{time.Second, true, 0},
			},
		},
		{
			name: "default_burst_is_ceil_rate", rate: 2.5, burst: 0,
			steps: []step{
				{0, true, 0}, {0, true, 0}, {0, true, 0},
				{0, false, 400 * time.Millisecond},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clk := &fakeClock{t: time.Unix(1000, 0)}
			tb := newTokenBucket(tc.rate, tc.burst, clk.now)
			for i, s := range tc.steps {
				clk.advance(s.advance)
				ok, retry := tb.allow("client-a")
				if ok != s.wantOK {
					t.Fatalf("step %d: allow = %v, want %v", i, ok, s.wantOK)
				}
				if !ok && retry != s.wantRetry {
					t.Fatalf("step %d: retry = %v, want %v", i, retry, s.wantRetry)
				}
			}
		})
	}
}

// TestTokenBucketPerClientIsolation pins that one client draining its
// bucket cannot starve another: buckets are keyed, not shared.
func TestTokenBucketPerClientIsolation(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	tb := newTokenBucket(1, 2, clk.now)
	for i := 0; i < 2; i++ {
		if ok, _ := tb.allow("greedy"); !ok {
			t.Fatalf("greedy admission %d rejected within burst", i)
		}
	}
	if ok, _ := tb.allow("greedy"); ok {
		t.Fatal("greedy admitted past its burst")
	}
	for i := 0; i < 2; i++ {
		if ok, _ := tb.allow("quiet"); !ok {
			t.Fatalf("quiet client starved by greedy's exhaustion (admission %d)", i)
		}
	}
}

// TestTokenBucketRetryAfterIsSufficient pins the advisory contract: a
// client that waits exactly the returned duration is admitted.
func TestTokenBucketRetryAfterIsSufficient(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	tb := newTokenBucket(3, 1, clk.now)
	if ok, _ := tb.allow("c"); !ok {
		t.Fatal("first admission rejected")
	}
	for i := 0; i < 5; i++ {
		ok, retry := tb.allow("c")
		if ok {
			t.Fatalf("round %d: admitted with an empty bucket", i)
		}
		clk.advance(retry)
		if ok, _ := tb.allow("c"); !ok {
			t.Fatalf("round %d: rejected after waiting the advised %v", i, retry)
		}
	}
}
