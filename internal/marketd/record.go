package marketd

import (
	"encoding/json"
	"fmt"
	"math"

	"github.com/fedauction/afl/internal/batch"
	"github.com/fedauction/afl/internal/core"
)

// WAL record vocabulary. A submission's life in the log is
//
//	bid(seq) … pay(seq, winner)* … outcome(seq)
//
// where the outcome record is the commit marker: replay applies a
// submission's ledger effects only when its outcome record is present,
// so a crash anywhere between the solve and the final append re-solves
// the bid instead of half-paying it. Payment records are the
// write-ahead of the per-winner ledger mutations; payment records whose
// commit marker never made it to disk are orphans and are discarded
// (and re-written, bit-identically, when the re-solve commits).
const (
	recBid     = "bid"
	recPay     = "pay"
	recOutcome = "outcome"
)

// ConfigWire is the JSON form of a core.Config shared by the HTTP API
// and the WAL. It covers every serializable auction parameter;
// LocalIters (a function) has no wire form — durable markets run the
// paper's default T_l(θ), which is what a nil func selects.
type ConfigWire struct {
	T              int     `json:"t"`
	K              int     `json:"k"`
	TMax           float64 `json:"t_max,omitempty"`
	PaymentRule    int     `json:"payment_rule,omitempty"`
	ReservePrice   float64 `json:"reserve_price,omitempty"`
	ScheduleRule   int     `json:"schedule_rule,omitempty"`
	ExcludeOwnBids bool    `json:"exclude_own_bids,omitempty"`
}

// FromConfig converts a core.Config to its wire form. The error names
// the one field that cannot travel: a non-nil LocalIters.
func FromConfig(cfg core.Config) (ConfigWire, error) {
	if cfg.LocalIters != nil {
		return ConfigWire{}, fmt.Errorf("marketd: Config.LocalIters is a function and has no wire form; use the default (nil)")
	}
	return ConfigWire{
		T:              cfg.T,
		K:              cfg.K,
		TMax:           cfg.TMax,
		PaymentRule:    int(cfg.PaymentRule),
		ReservePrice:   cfg.ReservePrice,
		ScheduleRule:   int(cfg.ScheduleRule),
		ExcludeOwnBids: cfg.ExcludeOwnBids,
	}, nil
}

// ToConfig converts the wire form back to a core.Config.
func (c ConfigWire) ToConfig() core.Config {
	return core.Config{
		T:              c.T,
		K:              c.K,
		TMax:           c.TMax,
		PaymentRule:    core.PaymentRule(c.PaymentRule),
		ReservePrice:   c.ReservePrice,
		ScheduleRule:   core.ScheduleRule(c.ScheduleRule),
		ExcludeOwnBids: c.ExcludeOwnBids,
	}
}

// WinnerRecord is the committed view of one accepted bid: identity,
// schedule, and remuneration. It is embedded in OutcomeRecord, so the
// commit marker is self-contained — replay rebuilds the ledger from it
// without re-reading the pay records.
type WinnerRecord struct {
	BidIndex int     `json:"bid_index"`
	Client   int     `json:"client"`
	Index    int     `json:"index"`
	Price    float64 `json:"price"`
	Theta    float64 `json:"theta"`
	Slots    []int   `json:"slots"`
	Payment  float64 `json:"payment"`
}

// OutcomeRecord is the durable, servable form of one solved submission.
// It is what the WAL stores, what recovery replays, and what the HTTP
// API returns — one representation, so an outcome read before a crash
// and the same outcome read after recovery are byte-identical.
type OutcomeRecord struct {
	Seq      int            `json:"seq"`
	Err      string         `json:"err,omitempty"`
	Feasible bool           `json:"feasible"`
	Tg       int            `json:"tg,omitempty"`
	Cost     float64        `json:"cost,omitempty"`
	Winners  []WinnerRecord `json:"winners,omitempty"`
	Total    float64        `json:"total_payment,omitempty"`
	// Approximate-solver provenance: the tier that produced the outcome
	// and its certified bound and ratio. All three are omitted for exact
	// solves (Result.Cert nil), so historical records and exact markets
	// keep their byte-identical wire form.
	Solver         string  `json:"solver,omitempty"`
	CertLowerBound float64 `json:"cert_lower_bound,omitempty"`
	CertRatio      float64 `json:"cert_ratio,omitempty"`
}

// recordFromOutcome flattens a batch outcome into its durable form.
func recordFromOutcome(oc batch.Outcome) OutcomeRecord {
	rec := OutcomeRecord{Seq: oc.Index}
	if oc.Err != nil {
		rec.Err = oc.Err.Error()
	}
	res := oc.Result
	rec.Feasible = res.Feasible
	if !res.Feasible {
		return rec
	}
	rec.Tg = res.Tg
	rec.Cost = res.Cost
	if c := res.Cert; c != nil {
		rec.Solver = c.Solver.String()
		rec.CertLowerBound = c.LowerBound
		if !math.IsInf(c.Ratio, 1) {
			rec.CertRatio = c.Ratio
		}
	}
	rec.Winners = make([]WinnerRecord, len(res.Winners))
	for i, w := range res.Winners {
		rec.Winners[i] = WinnerRecord{
			BidIndex: w.BidIndex,
			Client:   w.Bid.Client,
			Index:    w.Bid.Index,
			Price:    w.Bid.Price,
			Theta:    w.Bid.Theta,
			Slots:    w.Slots,
			Payment:  w.Payment,
		}
		rec.Total += w.Payment
	}
	return rec
}

// walRecord is the envelope every WAL payload decodes into; Type
// selects which of the optional bodies is populated.
type walRecord struct {
	Type string `json:"type"`
	Seq  int    `json:"seq"`

	// recBid fields. Solver is the submission's solver tier wire name;
	// empty (omitted) means exact, so records written before solver
	// tiers existed replay unchanged. Persisting it in the bid record —
	// not just the outcome — is what makes recovery bit-identical: a
	// pending bid re-solved after a crash runs under the tier the
	// original solve would have used, whatever the reopened market's
	// own configuration says.
	Client string      `json:"client,omitempty"`
	Bids   []core.Bid  `json:"bids,omitempty"`
	Cfg    *ConfigWire `json:"cfg,omitempty"`
	Solver string      `json:"solver,omitempty"`

	// recPay fields.
	PayClient int     `json:"pay_client,omitempty"`
	BidIndex  int     `json:"bid_index,omitempty"`
	Amount    float64 `json:"amount,omitempty"`

	// recOutcome field.
	Outcome *OutcomeRecord `json:"outcome,omitempty"`
}

// The json.Marshal-based encoders below are the reference
// implementation: the hot paths use the append-style encoders in
// encode.go, which TestEncodeDifferential pins byte-for-byte against
// these. Tests and tools may keep using them where allocation does not
// matter.

func encodeBidRecord(seq int, client string, inst batch.Instance) ([]byte, error) {
	cw, err := FromConfig(inst.Cfg)
	if err != nil {
		return nil, err
	}
	sv := ""
	if inst.Solver != core.SolverExact {
		sv = inst.Solver.String()
	}
	return json.Marshal(walRecord{
		Type: recBid, Seq: seq, Client: client, Bids: inst.Bids, Cfg: &cw, Solver: sv,
	})
}

func encodePayRecord(seq int, w WinnerRecord) ([]byte, error) {
	return json.Marshal(walRecord{
		Type: recPay, Seq: seq,
		PayClient: w.Client, BidIndex: w.BidIndex, Amount: w.Payment,
	})
}

func encodeOutcomeRecord(rec OutcomeRecord) ([]byte, error) {
	return json.Marshal(walRecord{Type: recOutcome, Seq: rec.Seq, Outcome: &rec})
}

func decodeRecord(payload []byte) (walRecord, error) {
	var r walRecord
	if err := json.Unmarshal(payload, &r); err != nil {
		return r, fmt.Errorf("marketd: undecodable WAL record: %w", err)
	}
	switch r.Type {
	case recBid, recPay, recOutcome:
		return r, nil
	default:
		return r, fmt.Errorf("marketd: unknown WAL record type %q", r.Type)
	}
}
