package marketd

import (
	"bytes"
	"encoding/json"
	"sort"
)

// Snapshot renders the market's committed state — every outcome in
// sequence order plus the per-client ledger in client order — as
// canonical JSON. Two markets with identical state produce identical
// bytes, which is how the restart suite asserts bit-identical recovery
// against an uninterrupted golden run.
func (m *Market) Snapshot() []byte {
	m.mu.Lock()
	seqs := make([]int, 0, len(m.outcomes))
	for seq := range m.outcomes {
		seqs = append(seqs, seq)
	}
	sort.Ints(seqs)
	outcomes := make([]OutcomeRecord, len(seqs))
	for i, seq := range seqs {
		outcomes[i] = m.outcomes[seq]
	}
	ledger := m.ledgerLocked()
	clients := make([]int, 0, len(ledger))
	for c := range ledger {
		clients = append(clients, c)
	}
	sort.Ints(clients)
	type ledgerLine struct {
		Client  int     `json:"client"`
		Payment float64 `json:"payment"`
	}
	lines := make([]ledgerLine, len(clients))
	for i, c := range clients {
		lines[i] = ledgerLine{Client: c, Payment: ledger[c]}
	}
	m.mu.Unlock()

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.Encode(struct {
		Outcomes []OutcomeRecord `json:"outcomes"`
		Ledger   []ledgerLine    `json:"ledger"`
	}{outcomes, lines})
	return buf.Bytes()
}
