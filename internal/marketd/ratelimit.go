package marketd

import (
	"math"
	"sync"
	"time"
)

// tokenBucket is a per-client token-bucket rate limiter. Each client key
// owns an independent bucket of capacity burst that refills at rate
// tokens per second; an admission spends one token. Time comes from an
// injected clock, so the refill arithmetic is pure — tests drive it with
// a virtual clock and never sleep.
//
// Buckets are tracked lazily as float64 token counts with a last-refill
// timestamp; a client that stays idle for burst/rate seconds is
// indistinguishable from a new one, so the map never needs eviction for
// correctness (only for memory, which the daemon's bounded client
// population makes moot).
type tokenBucket struct {
	rate  float64 // tokens per second
	burst float64 // bucket capacity
	now   func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// newTokenBucket builds a limiter. rate must be positive; burst <= 0
// selects max(1, ceil(rate)) so a fresh client can always submit at
// least once.
func newTokenBucket(rate float64, burst int, now func() time.Time) *tokenBucket {
	b := float64(burst)
	if burst <= 0 {
		b = math.Max(1, math.Ceil(rate))
	}
	return &tokenBucket{
		rate:    rate,
		burst:   b,
		now:     now,
		buckets: make(map[string]*bucket),
	}
}

// allow spends one token from client's bucket. When the bucket is empty
// it reports false and the duration until one full token will have
// accrued — the Retry-After the HTTP edge advertises.
func (t *tokenBucket) allow(client string) (bool, time.Duration) {
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	b, ok := t.buckets[client]
	if !ok {
		b = &bucket{tokens: t.burst, last: now}
		t.buckets[client] = b
	} else if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(t.burst, b.tokens+dt*t.rate)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	deficit := 1 - b.tokens
	wait := time.Duration(math.Ceil(deficit / t.rate * float64(time.Second)))
	return false, wait
}
