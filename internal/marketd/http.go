package marketd

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"

	"github.com/fedauction/afl/internal/batch"
	"github.com/fedauction/afl/internal/core"
	"github.com/fedauction/afl/internal/obs"
)

// SubmitRequest is the POST /v1/auctions body: one auction instance
// plus the submitting client's key (the rate-limit identity).
type SubmitRequest struct {
	Client string     `json:"client"`
	Bids   []core.Bid `json:"bids"`
	Cfg    ConfigWire `json:"cfg"`
}

// SubmitResponse acknowledges a durably logged submission.
type SubmitResponse struct {
	Seq int `json:"seq"`
}

// StatsResponse is the GET /v1/stats body.
type StatsResponse struct {
	Next       int  `json:"next_seq"`
	Committed  int  `json:"committed"`
	Pending    int  `json:"pending"`
	QueueDepth int  `json:"queue_depth"`
	Faults     int  `json:"recovered_faults"`
	Killed     bool `json:"killed"`
}

type errorBody struct {
	Error string `json:"error"`
}

// Handler returns the market's HTTP API:
//
//	POST /v1/auctions        submit one auction; 200 {"seq":n} once the
//	                         bid record is durable, 429 + Retry-After
//	                         when the client's token bucket is empty,
//	                         503 + Retry-After when admission control
//	                         rejects on pending depth, 400 on a bad body
//	GET  /v1/auctions/{seq}  200 with the committed OutcomeRecord,
//	                         202 {"seq":n} while still pending,
//	                         404 for a never-issued sequence number
//	GET  /v1/ledger          200 with the per-client cumulative payments
//	GET  /v1/stats           200 with load and recovery counters
//	GET  /healthz            200 "ok", 503 after a kill
//
// Rate limiting is keyed by the request's client field, and both reject
// paths set Retry-After in whole seconds (rounded up), so a compliant
// client that honors it is admitted on its next attempt.
func Handler(m *Market) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/auctions", m.handleSubmit)
	mux.HandleFunc("GET /v1/auctions/{seq}", m.handleOutcome)
	mux.HandleFunc("GET /v1/ledger", m.handleLedger)
	mux.HandleFunc("GET /v1/stats", m.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if m.Killed() {
			http.Error(w, "killed", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("ok\n"))
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// retryAfterSeconds renders a wait as the integral Retry-After header
// value: whole seconds, rounded up, at least 1.
func retryAfterSeconds(wait float64) string {
	s := int(math.Ceil(wait))
	if s < 1 {
		s = 1
	}
	return strconv.Itoa(s)
}

func (m *Market) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad request body: %v", err)})
		return
	}
	if len(req.Bids) == 0 {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "no bids"})
		return
	}

	if m.limiter != nil {
		key := req.Client
		if key == "" {
			key = r.RemoteAddr
		}
		if ok, wait := m.limiter.allow(key); !ok {
			if o := m.cfg.Observer; o != nil {
				o.Observe(obs.Event{
					Kind: obs.EvRateLimited, Client: -1, Bid: -1,
					Label: key, Value: wait.Seconds(),
				})
			}
			w.Header().Set("Retry-After", retryAfterSeconds(wait.Seconds()))
			writeJSON(w, http.StatusTooManyRequests, errorBody{Error: "rate limit exceeded"})
			return
		}
	}

	if max := m.cfg.MaxPending; max > 0 {
		if _, _, pending, _ := m.Counts(); pending >= max {
			if o := m.cfg.Observer; o != nil {
				o.Observe(obs.Event{
					Kind: obs.EvAdmissionRejected, Client: -1, Bid: -1,
					Value: float64(pending),
				})
			}
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "market saturated"})
			return
		}
	}

	seq, err := m.Submit(r.Context(), req.Client, batch.Instance{Bids: req.Bids, Cfg: req.Cfg.ToConfig()})
	if err != nil {
		if errors.Is(err, ErrClosed) {
			writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
			return
		}
		if seq >= 0 {
			// Durably logged but not queued in this lifetime (e.g. the
			// request context expired under backpressure): still an ack —
			// the bid is in the WAL and the next Open solves it.
			writeJSON(w, http.StatusOK, SubmitResponse{Seq: seq})
			return
		}
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, SubmitResponse{Seq: seq})
}

func (m *Market) handleOutcome(w http.ResponseWriter, r *http.Request) {
	seq, err := strconv.Atoi(r.PathValue("seq"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad sequence number"})
		return
	}
	rec, done, err := m.Outcome(seq)
	switch {
	case err != nil:
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
	case !done:
		writeJSON(w, http.StatusAccepted, SubmitResponse{Seq: seq})
	default:
		writeJSON(w, http.StatusOK, rec)
	}
}

func (m *Market) handleLedger(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, m.Ledger())
}

func (m *Market) handleStats(w http.ResponseWriter, r *http.Request) {
	next, committed, pending, depth := m.Counts()
	writeJSON(w, http.StatusOK, StatsResponse{
		Next: next, Committed: committed, Pending: pending,
		QueueDepth: depth, Faults: m.RecoveredFaults(), Killed: m.Killed(),
	})
}
