package marketd

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"

	"github.com/fedauction/afl/internal/batch"
	"github.com/fedauction/afl/internal/core"
	"github.com/fedauction/afl/internal/obs"
)

// SubmitRequest is the POST /v1/auctions body: one auction instance
// plus the submitting client's key (the rate-limit identity).
type SubmitRequest struct {
	Client string     `json:"client"`
	Bids   []core.Bid `json:"bids"`
	Cfg    ConfigWire `json:"cfg"`
}

// SubmitResponse acknowledges a durably logged submission.
type SubmitResponse struct {
	Seq int `json:"seq"`
}

// BatchSubmitRequest is the POST /v1/auctions:batch body: several
// auction instances from one client, made durable under a single group
// commit (one fsync for the whole batch).
type BatchSubmitRequest struct {
	Client    string          `json:"client"`
	Instances []BatchInstance `json:"instances"`
}

// BatchInstance is one auction inside a batch submission.
type BatchInstance struct {
	Bids []core.Bid `json:"bids"`
	Cfg  ConfigWire `json:"cfg"`
}

// BatchSubmitResponse acknowledges a durably logged batch; Seqs are in
// instance order.
type BatchSubmitResponse struct {
	Seqs []int `json:"seqs"`
}

// StatsResponse is the GET /v1/stats body. The embedded WALInfo fields
// are zero for a volatile market (LastCheckpointSeq is -1 when no
// checkpoint exists).
type StatsResponse struct {
	Next       int  `json:"next_seq"`
	Committed  int  `json:"committed"`
	Pending    int  `json:"pending"`
	QueueDepth int  `json:"queue_depth"`
	Faults     int  `json:"recovered_faults"`
	Killed     bool `json:"killed"`
	WALInfo
}

type errorBody struct {
	Error string `json:"error"`
}

// Handler returns the market's HTTP API:
//
//	POST /v1/auctions        submit one auction; 200 {"seq":n} once the
//	                         bid record is durable, 429 + Retry-After
//	                         when the client's token bucket is empty,
//	                         503 + Retry-After when admission control
//	                         rejects on pending depth, 400 on a bad body
//	POST /v1/auctions:batch  submit several auctions at once; 200
//	                         {"seqs":[...]} once every bid record is
//	                         durable — the whole batch rides one group
//	                         commit, so it costs one fsync. Admission
//	                         (rate limit, pending depth) is charged per
//	                         request, not per instance.
//	GET  /v1/auctions/{seq}  200 with the committed OutcomeRecord,
//	                         202 {"seq":n} while still pending,
//	                         410 for an outcome the retention policy
//	                         pruned from history (its payments remain in
//	                         the ledger),
//	                         404 for a never-issued sequence number
//	GET  /v1/ledger          200 with the per-client cumulative payments
//	GET  /v1/stats           200 with load and recovery counters plus
//	                         the WAL footprint (bytes, segments, last
//	                         checkpoint, tail replayed at last restart)
//	GET  /healthz            200 "ok", 503 after a kill
//
// Rate limiting is keyed by the request's client field, and both reject
// paths set Retry-After in whole seconds (rounded up), so a compliant
// client that honors it is admitted on its next attempt.
//
// Hot responses (submit acks and committed outcomes) are rendered by
// the append-style encoders in encode.go through a buffer pool instead
// of per-request json.Marshal; the bytes are identical.
func Handler(m *Market) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/auctions", m.handleSubmit)
	mux.HandleFunc("POST /v1/auctions:batch", m.handleSubmitBatch)
	mux.HandleFunc("GET /v1/auctions/{seq}", m.handleOutcome)
	mux.HandleFunc("GET /v1/ledger", m.handleLedger)
	mux.HandleFunc("GET /v1/stats", m.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if m.Killed() {
			http.Error(w, "killed", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("ok\n"))
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// respBufPool recycles response-encoding buffers across requests so the
// hot handlers (submit ack, committed outcome) write through the
// append encoders without a per-request allocation.
var respBufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 1024); return &b },
}

// writeBuf sends buf as a JSON response body (a trailing newline keeps
// the bytes identical to writeJSON's json.Encoder output).
func writeBuf(w http.ResponseWriter, status int, buf []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(buf)
}

// writeSeq renders {"seq":n} through the buffer pool.
func writeSeq(w http.ResponseWriter, status, seq int) {
	bp := respBufPool.Get().(*[]byte)
	buf := append((*bp)[:0], `{"seq":`...)
	buf = strconv.AppendInt(buf, int64(seq), 10)
	buf = append(buf, '}', '\n')
	writeBuf(w, status, buf)
	*bp = buf[:0]
	respBufPool.Put(bp)
}

// writeOutcome renders a committed OutcomeRecord through the buffer
// pool, byte-identical to the json.Marshal form the WAL pins.
func writeOutcome(w http.ResponseWriter, rec OutcomeRecord) {
	bp := respBufPool.Get().(*[]byte)
	buf, err := appendOutcomeBody((*bp)[:0], &rec)
	if err != nil {
		// Unreachable for committed records (non-finite floats cannot
		// commit), but fall back rather than drop the response.
		respBufPool.Put(bp)
		writeJSON(w, http.StatusOK, rec)
		return
	}
	buf = append(buf, '\n')
	writeBuf(w, http.StatusOK, buf)
	*bp = buf[:0]
	respBufPool.Put(bp)
}

// retryAfterSeconds renders a wait as the integral Retry-After header
// value: whole seconds, rounded up, at least 1.
func retryAfterSeconds(wait float64) string {
	s := int(math.Ceil(wait))
	if s < 1 {
		s = 1
	}
	return strconv.Itoa(s)
}

// admit runs the shared admission checks (rate limit, pending depth)
// and writes the reject response itself; callers proceed only on true.
func (m *Market) admit(w http.ResponseWriter, r *http.Request, client string) bool {
	if m.limiter != nil {
		key := client
		if key == "" {
			key = r.RemoteAddr
		}
		if ok, wait := m.limiter.allow(key); !ok {
			if o := m.cfg.Observer; o != nil {
				o.Observe(obs.Event{
					Kind: obs.EvRateLimited, Client: -1, Bid: -1,
					Label: key, Value: wait.Seconds(),
				})
			}
			w.Header().Set("Retry-After", retryAfterSeconds(wait.Seconds()))
			writeJSON(w, http.StatusTooManyRequests, errorBody{Error: "rate limit exceeded"})
			return false
		}
	}

	if max := m.cfg.MaxPending; max > 0 {
		if _, _, pending, _ := m.Counts(); pending >= max {
			if o := m.cfg.Observer; o != nil {
				o.Observe(obs.Event{
					Kind: obs.EvAdmissionRejected, Client: -1, Bid: -1,
					Value: float64(pending),
				})
			}
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "market saturated"})
			return false
		}
	}
	return true
}

func (m *Market) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad request body: %v", err)})
		return
	}
	if len(req.Bids) == 0 {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "no bids"})
		return
	}
	if !m.admit(w, r, req.Client) {
		return
	}

	seq, err := m.Submit(r.Context(), req.Client, batch.Instance{Bids: req.Bids, Cfg: req.Cfg.ToConfig()})
	if err != nil {
		if errors.Is(err, ErrClosed) {
			writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
			return
		}
		if seq >= 0 {
			// Durably logged but not queued in this lifetime (e.g. the
			// request context expired under backpressure): still an ack —
			// the bid is in the WAL and the next Open solves it.
			writeSeq(w, http.StatusOK, seq)
			return
		}
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	writeSeq(w, http.StatusOK, seq)
}

func (m *Market) handleSubmitBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchSubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad request body: %v", err)})
		return
	}
	if len(req.Instances) == 0 {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "no bids"})
		return
	}
	insts := make([]batch.Instance, len(req.Instances))
	for i, in := range req.Instances {
		if len(in.Bids) == 0 {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "no bids"})
			return
		}
		insts[i] = batch.Instance{Bids: in.Bids, Cfg: in.Cfg.ToConfig()}
	}
	if !m.admit(w, r, req.Client) {
		return
	}

	seqs, err := m.SubmitBatch(r.Context(), req.Client, insts)
	if err != nil {
		if errors.Is(err, ErrClosed) {
			writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
			return
		}
		for _, seq := range seqs {
			if seq < 0 {
				// Not every bid record reached the log: no partial acks.
				writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
				return
			}
		}
		// All durably logged; the error was a queueing-lifetime problem
		// (see handleSubmit). Still an ack.
	}
	writeJSON(w, http.StatusOK, BatchSubmitResponse{Seqs: seqs})
}

func (m *Market) handleOutcome(w http.ResponseWriter, r *http.Request) {
	seq, err := strconv.Atoi(r.PathValue("seq"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad sequence number"})
		return
	}
	rec, done, err := m.Outcome(seq)
	switch {
	case errors.Is(err, ErrPruned):
		// The outcome was committed, folded into the ledger, and then
		// evicted by the retention policy; history before the floor is
		// permanently gone, which is what 410 means.
		writeJSON(w, http.StatusGone, errorBody{Error: err.Error()})
	case err != nil:
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
	case !done:
		writeSeq(w, http.StatusAccepted, seq)
	default:
		writeOutcome(w, rec)
	}
}

func (m *Market) handleLedger(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, m.Ledger())
}

func (m *Market) handleStats(w http.ResponseWriter, r *http.Request) {
	next, committed, pending, depth := m.Counts()
	writeJSON(w, http.StatusOK, StatsResponse{
		Next: next, Committed: committed, Pending: pending,
		QueueDepth: depth, Faults: m.RecoveredFaults(), Killed: m.Killed(),
		WALInfo: m.WALInfo(),
	})
}
