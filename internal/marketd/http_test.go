package marketd

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"github.com/fedauction/afl/internal/batch"
)

func submitBody(t testing.TB, client string, inst batch.Instance) *bytes.Reader {
	t.Helper()
	cw, err := FromConfig(inst.Cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(SubmitRequest{Client: client, Bids: inst.Bids, Cfg: cw})
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(b)
}

func doJSON(t testing.TB, h http.Handler, method, path string, body *bytes.Reader, out any) *httptest.ResponseRecorder {
	t.Helper()
	var req *http.Request
	if body != nil {
		req = httptest.NewRequest(method, path, body)
	} else {
		req = httptest.NewRequest(method, path, nil)
	}
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if out != nil && rr.Code < 300 || rr.Code == http.StatusAccepted {
		if err := json.Unmarshal(rr.Body.Bytes(), out); err != nil && out != nil {
			t.Fatalf("%s %s: undecodable body %q: %v", method, path, rr.Body.String(), err)
		}
	}
	return rr
}

// TestHandlerSubmitAndQuery walks the happy path end to end over the
// HTTP surface: submit, poll to commitment, read the ledger and stats.
func TestHandlerSubmitAndQuery(t *testing.T) {
	insts := marketInstances(t, 2)
	m, err := Open(context.Background(), Config{Dir: t.TempDir(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	h := Handler(m)

	var ack SubmitResponse
	rr := doJSON(t, h, "POST", "/v1/auctions", submitBody(t, "alice", insts[0]), &ack)
	if rr.Code != http.StatusOK {
		t.Fatalf("submit status = %d, body %s", rr.Code, rr.Body.String())
	}
	if ack.Seq != 0 {
		t.Fatalf("first seq = %d, want 0", ack.Seq)
	}
	if _, err := m.Wait(context.Background(), ack.Seq); err != nil {
		t.Fatal(err)
	}

	var rec OutcomeRecord
	rr = doJSON(t, h, "GET", "/v1/auctions/0", nil, &rec)
	if rr.Code != http.StatusOK {
		t.Fatalf("outcome status = %d", rr.Code)
	}
	want, _, err := m.Outcome(0)
	if err != nil {
		t.Fatal(err)
	}
	assertRecordEqual(t, rec, want)

	var ledger map[string]float64
	if rr := doJSON(t, h, "GET", "/v1/ledger", nil, &ledger); rr.Code != http.StatusOK {
		t.Fatalf("ledger status = %d", rr.Code)
	}
	var total float64
	for _, p := range ledger {
		total += p
	}
	// Summation order differs (per-client map vs winner slice), so the
	// totals agree to rounding, not bit-exactly.
	if diff := total - want.Total; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("ledger total = %v, want %v", total, want.Total)
	}

	var stats StatsResponse
	if rr := doJSON(t, h, "GET", "/v1/stats", nil, &stats); rr.Code != http.StatusOK {
		t.Fatalf("stats status = %d", rr.Code)
	}
	if stats.Next != 1 || stats.Committed != 1 || stats.Killed {
		t.Fatalf("stats = %+v, want next 1 committed 1 alive", stats)
	}

	if rr := doJSON(t, h, "GET", "/healthz", nil, nil); rr.Code != http.StatusOK {
		t.Fatalf("healthz = %d", rr.Code)
	}
}

// TestHandlerStatusCodes pins the error surface: pending 202, unknown
// 404, malformed 400s.
func TestHandlerStatusCodes(t *testing.T) {
	m, err := Open(context.Background(), Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	h := Handler(m)

	if rr := doJSON(t, h, "GET", "/v1/auctions/99", nil, nil); rr.Code != http.StatusNotFound {
		t.Fatalf("unknown seq = %d, want 404", rr.Code)
	}
	if rr := doJSON(t, h, "GET", "/v1/auctions/xyz", nil, nil); rr.Code != http.StatusBadRequest {
		t.Fatalf("bad seq = %d, want 400", rr.Code)
	}
	if rr := doJSON(t, h, "POST", "/v1/auctions", bytes.NewReader([]byte("{")), nil); rr.Code != http.StatusBadRequest {
		t.Fatalf("truncated body = %d, want 400", rr.Code)
	}
	if rr := doJSON(t, h, "POST", "/v1/auctions", bytes.NewReader([]byte(`{"client":"a"}`)), nil); rr.Code != http.StatusBadRequest {
		t.Fatalf("no bids = %d, want 400", rr.Code)
	}
}

// TestHandlerRateLimit pins the 429 contract on a virtual clock: a
// client past its burst is rejected with a Retry-After that, when
// honored, readmits it; other clients are unaffected throughout.
func TestHandlerRateLimit(t *testing.T) {
	insts := marketInstances(t, 1)
	clk := &fakeClock{t: time.Unix(1000, 0)}
	m, err := Open(context.Background(), Config{
		Workers: 1, RatePerSec: 1, Burst: 2, Now: clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	h := Handler(m)

	for i := 0; i < 2; i++ {
		if rr := doJSON(t, h, "POST", "/v1/auctions", submitBody(t, "alice", insts[0]), nil); rr.Code != http.StatusOK {
			t.Fatalf("burst submit %d = %d", i, rr.Code)
		}
	}
	rr := doJSON(t, h, "POST", "/v1/auctions", submitBody(t, "alice", insts[0]), nil)
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("over-burst = %d, want 429", rr.Code)
	}
	if got := rr.Header().Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", got)
	}
	// A different client key has its own bucket.
	if rr := doJSON(t, h, "POST", "/v1/auctions", submitBody(t, "bob", insts[0]), nil); rr.Code != http.StatusOK {
		t.Fatalf("isolated client = %d, want 200", rr.Code)
	}
	// Honoring the advisory readmits alice.
	clk.advance(time.Second)
	if rr := doJSON(t, h, "POST", "/v1/auctions", submitBody(t, "alice", insts[0]), nil); rr.Code != http.StatusOK {
		t.Fatalf("post-wait submit = %d, want 200", rr.Code)
	}
}

// TestHandlerAdmissionControl pins the 503 contract: while more than
// MaxPending acknowledged submissions await outcomes, the edge turns
// submissions away instead of queueing unboundedly.
func TestHandlerAdmissionControl(t *testing.T) {
	inst := marketInstances(t, 1)[0]
	// A solver gate: workers block until the test releases them, so the
	// pending count is fully under test control.
	gate := make(chan struct{})
	gated := inst
	gated.Cfg.LocalIters = func(theta float64) float64 {
		<-gate
		return 1
	}

	m, err := Open(context.Background(), Config{Workers: 1, Queue: 8, MaxPending: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	defer close(gate)
	h := Handler(m)

	// Gated instances cannot travel the wire (LocalIters is a func), so
	// seed the pending depth through the facade, then probe the edge.
	for i := 0; i < 2; i++ {
		if _, err := m.Submit(context.Background(), "seed", gated); err != nil {
			t.Fatal(err)
		}
	}
	rr := doJSON(t, h, "POST", "/v1/auctions", submitBody(t, "alice", inst), nil)
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("saturated submit = %d, want 503; body %s", rr.Code, rr.Body.String())
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
}

// TestHandlerClosedMarket pins that a closed market answers 503, not a
// hang or a panic.
func TestHandlerClosedMarket(t *testing.T) {
	inst := marketInstances(t, 1)[0]
	m, err := Open(context.Background(), Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	h := Handler(m)
	if rr := doJSON(t, h, "POST", "/v1/auctions", submitBody(t, "a", inst), nil); rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("closed submit = %d, want 503", rr.Code)
	}
}

// TestHandlerBatchSubmit drives POST /v1/auctions:batch: one request,
// consecutive seqs, every outcome committed and byte-identical to the
// pooled single-outcome responses writeJSON would have produced.
func TestHandlerBatchSubmit(t *testing.T) {
	insts := marketInstances(t, 3)
	m, err := Open(context.Background(), Config{Dir: t.TempDir(), Workers: 1, GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	h := Handler(m)

	req := BatchSubmitRequest{Client: "alice"}
	for _, inst := range insts {
		cw, err := FromConfig(inst.Cfg)
		if err != nil {
			t.Fatal(err)
		}
		req.Instances = append(req.Instances, BatchInstance{Bids: inst.Bids, Cfg: cw})
	}
	body, _ := json.Marshal(req)
	var ack BatchSubmitResponse
	rr := doJSON(t, h, "POST", "/v1/auctions:batch", bytes.NewReader(body), &ack)
	if rr.Code != http.StatusOK {
		t.Fatalf("batch submit status = %d, body %s", rr.Code, rr.Body.String())
	}
	if len(ack.Seqs) != len(insts) {
		t.Fatalf("batch returned %d seqs, want %d", len(ack.Seqs), len(insts))
	}
	for i, seq := range ack.Seqs {
		if seq != i {
			t.Fatalf("seqs[%d] = %d, want consecutive from 0", i, seq)
		}
		if _, err := m.Wait(context.Background(), seq); err != nil {
			t.Fatal(err)
		}
		var rec OutcomeRecord
		if rr := doJSON(t, h, "GET", "/v1/auctions/"+strconv.Itoa(seq), nil, &rec); rr.Code != http.StatusOK {
			t.Fatalf("outcome %d status = %d", seq, rr.Code)
		}
		assertRecordEqual(t, rec, solveRecord(t, seq, insts[i]))
	}

	// Empty batch and an instance without bids are both rejected.
	for _, bad := range []string{
		`{"client":"a","instances":[]}`,
		`{"client":"a","instances":[{"bids":[],"cfg":{"t":4,"k":1}}]}`,
	} {
		rr := doJSON(t, h, "POST", "/v1/auctions:batch", bytes.NewReader([]byte(bad)), nil)
		if rr.Code != http.StatusBadRequest {
			t.Fatalf("bad batch %q status = %d, want 400", bad, rr.Code)
		}
	}
}

// TestHandlerPooledResponsesMatchJSON pins the pooled append-encoder
// response bodies byte-for-byte against the json.Encoder rendering the
// handlers used before.
func TestHandlerPooledResponsesMatchJSON(t *testing.T) {
	insts := marketInstances(t, 1)
	m, err := Open(context.Background(), Config{Dir: t.TempDir(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	h := Handler(m)

	var ack SubmitResponse
	rr := doJSON(t, h, "POST", "/v1/auctions", submitBody(t, "alice", insts[0]), &ack)
	wantAck, _ := json.Marshal(SubmitResponse{Seq: ack.Seq})
	if got := rr.Body.String(); got != string(wantAck)+"\n" {
		t.Fatalf("submit ack body %q, want %q", got, string(wantAck)+"\n")
	}
	if _, err := m.Wait(context.Background(), ack.Seq); err != nil {
		t.Fatal(err)
	}

	rr = doJSON(t, h, "GET", "/v1/auctions/0", nil, nil)
	rec, _, err := m.Outcome(0)
	if err != nil {
		t.Fatal(err)
	}
	var wantBody bytes.Buffer
	if err := json.NewEncoder(&wantBody).Encode(rec); err != nil {
		t.Fatal(err)
	}
	if rr.Body.String() != wantBody.String() {
		t.Fatalf("outcome body diverges from json.Encoder:\n got %q\nwant %q", rr.Body.String(), wantBody.String())
	}
}

// TestHandlerPrunedAndStats covers the retention-facing HTTP surface:
// 410 for pruned outcomes and the WAL footprint in /v1/stats.
func TestHandlerPrunedAndStats(t *testing.T) {
	insts := marketInstances(t, 5)
	m, err := Open(context.Background(), Config{
		Dir: t.TempDir(), Workers: 1, CheckpointEvery: 2, RetainOutcomes: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	h := Handler(m)
	for _, inst := range insts {
		seq, err := m.Submit(context.Background(), "c", inst)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Wait(context.Background(), seq); err != nil {
			t.Fatal(err)
		}
	}

	rr := doJSON(t, h, "GET", "/v1/auctions/0", nil, nil)
	if rr.Code != http.StatusGone {
		t.Fatalf("pruned outcome status = %d, want 410", rr.Code)
	}
	if !bytes.Contains(rr.Body.Bytes(), []byte("pruned")) {
		t.Fatalf("410 body %q does not mention pruning", rr.Body.String())
	}
	if rr := doJSON(t, h, "GET", "/v1/auctions/99", nil, nil); rr.Code != http.StatusNotFound {
		t.Fatalf("unknown outcome status = %d, want 404", rr.Code)
	}

	var stats StatsResponse
	if rr := doJSON(t, h, "GET", "/v1/stats", nil, &stats); rr.Code != http.StatusOK {
		t.Fatalf("stats status = %d", rr.Code)
	}
	if stats.Committed != 5 || stats.Bytes == 0 || stats.Segments == 0 {
		t.Fatalf("stats = %+v, want committed 5 with a WAL footprint", stats)
	}
	if stats.LastCheckpointSeq < 2 {
		t.Fatalf("stats.LastCheckpointSeq = %d, want a checkpoint", stats.LastCheckpointSeq)
	}
}
