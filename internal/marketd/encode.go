package marketd

import (
	"fmt"
	"math"
	"strconv"
	"unicode/utf8"

	"github.com/fedauction/afl/internal/batch"
	"github.com/fedauction/afl/internal/core"
)

// Append-style WAL record encoders. These produce byte-for-byte the
// same JSON as encoding/json on the walRecord envelope (locked in by
// TestEncodeDifferential), but append into a caller-owned buffer, so a
// committed auction costs a small constant number of allocations
// instead of one tree of them per record. The commit path reuses one
// scratch buffer per market under m.mu; replay reuses one decoder
// scratch. Field order, omitempty semantics (including the pay_client
// quirk: a zero client index is omitted) and float formatting all
// mirror encoding/json so that logs written by either implementation
// replay identically.

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a JSON string literal with
// encoding/json's default (HTML-escaping) rules: ", \, control
// characters, <, >, &, U+2028/U+2029 and invalid UTF-8 are escaped.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if b >= 0x20 && b != '"' && b != '\\' && b != '<' && b != '>' && b != '&' {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	dst = append(dst, '"')
	return dst
}

// appendJSONFloat appends f with encoding/json's float encoder: 'f'
// format except for magnitudes below 1e-6 or at/above 1e21, which use
// 'e' with the exponent's leading zero stripped. Non-finite values are
// not representable in JSON and report an error, as json.Marshal does.
func appendJSONFloat(dst []byte, f float64) ([]byte, error) {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return dst, fmt.Errorf("marketd: unsupported float value %v in WAL record", f)
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst, nil
}

func appendBid(dst []byte, b core.Bid) ([]byte, error) {
	var err error
	dst = append(dst, `{"Client":`...)
	dst = strconv.AppendInt(dst, int64(b.Client), 10)
	dst = append(dst, `,"Index":`...)
	dst = strconv.AppendInt(dst, int64(b.Index), 10)
	dst = append(dst, `,"Price":`...)
	if dst, err = appendJSONFloat(dst, b.Price); err != nil {
		return dst, err
	}
	dst = append(dst, `,"TrueCost":`...)
	if dst, err = appendJSONFloat(dst, b.TrueCost); err != nil {
		return dst, err
	}
	dst = append(dst, `,"Theta":`...)
	if dst, err = appendJSONFloat(dst, b.Theta); err != nil {
		return dst, err
	}
	dst = append(dst, `,"Start":`...)
	dst = strconv.AppendInt(dst, int64(b.Start), 10)
	dst = append(dst, `,"End":`...)
	dst = strconv.AppendInt(dst, int64(b.End), 10)
	dst = append(dst, `,"Rounds":`...)
	dst = strconv.AppendInt(dst, int64(b.Rounds), 10)
	dst = append(dst, `,"CompTime":`...)
	if dst, err = appendJSONFloat(dst, b.CompTime); err != nil {
		return dst, err
	}
	dst = append(dst, `,"CommTime":`...)
	if dst, err = appendJSONFloat(dst, b.CommTime); err != nil {
		return dst, err
	}
	return append(dst, '}'), nil
}

func appendConfigWire(dst []byte, c ConfigWire) ([]byte, error) {
	var err error
	dst = append(dst, `{"t":`...)
	dst = strconv.AppendInt(dst, int64(c.T), 10)
	dst = append(dst, `,"k":`...)
	dst = strconv.AppendInt(dst, int64(c.K), 10)
	if c.TMax != 0 {
		dst = append(dst, `,"t_max":`...)
		if dst, err = appendJSONFloat(dst, c.TMax); err != nil {
			return dst, err
		}
	}
	if c.PaymentRule != 0 {
		dst = append(dst, `,"payment_rule":`...)
		dst = strconv.AppendInt(dst, int64(c.PaymentRule), 10)
	}
	if c.ReservePrice != 0 {
		dst = append(dst, `,"reserve_price":`...)
		if dst, err = appendJSONFloat(dst, c.ReservePrice); err != nil {
			return dst, err
		}
	}
	if c.ScheduleRule != 0 {
		dst = append(dst, `,"schedule_rule":`...)
		dst = strconv.AppendInt(dst, int64(c.ScheduleRule), 10)
	}
	if c.ExcludeOwnBids {
		dst = append(dst, `,"exclude_own_bids":true`...)
	}
	return append(dst, '}'), nil
}

func appendWinner(dst []byte, w WinnerRecord) ([]byte, error) {
	var err error
	dst = append(dst, `{"bid_index":`...)
	dst = strconv.AppendInt(dst, int64(w.BidIndex), 10)
	dst = append(dst, `,"client":`...)
	dst = strconv.AppendInt(dst, int64(w.Client), 10)
	dst = append(dst, `,"index":`...)
	dst = strconv.AppendInt(dst, int64(w.Index), 10)
	dst = append(dst, `,"price":`...)
	if dst, err = appendJSONFloat(dst, w.Price); err != nil {
		return dst, err
	}
	dst = append(dst, `,"theta":`...)
	if dst, err = appendJSONFloat(dst, w.Theta); err != nil {
		return dst, err
	}
	dst = append(dst, `,"slots":`...)
	if w.Slots == nil {
		dst = append(dst, `null`...)
	} else {
		dst = append(dst, '[')
		for i, s := range w.Slots {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = strconv.AppendInt(dst, int64(s), 10)
		}
		dst = append(dst, ']')
	}
	dst = append(dst, `,"payment":`...)
	if dst, err = appendJSONFloat(dst, w.Payment); err != nil {
		return dst, err
	}
	return append(dst, '}'), nil
}

// appendOutcomeBody appends the bare OutcomeRecord object (the value of
// the envelope's "outcome" key, and the HTTP GET response body).
func appendOutcomeBody(dst []byte, rec *OutcomeRecord) ([]byte, error) {
	var err error
	dst = append(dst, `{"seq":`...)
	dst = strconv.AppendInt(dst, int64(rec.Seq), 10)
	if rec.Err != "" {
		dst = append(dst, `,"err":`...)
		dst = appendJSONString(dst, rec.Err)
	}
	if rec.Feasible {
		dst = append(dst, `,"feasible":true`...)
	} else {
		dst = append(dst, `,"feasible":false`...)
	}
	if rec.Tg != 0 {
		dst = append(dst, `,"tg":`...)
		dst = strconv.AppendInt(dst, int64(rec.Tg), 10)
	}
	if rec.Cost != 0 {
		dst = append(dst, `,"cost":`...)
		if dst, err = appendJSONFloat(dst, rec.Cost); err != nil {
			return dst, err
		}
	}
	if len(rec.Winners) > 0 {
		dst = append(dst, `,"winners":[`...)
		for i := range rec.Winners {
			if i > 0 {
				dst = append(dst, ',')
			}
			if dst, err = appendWinner(dst, rec.Winners[i]); err != nil {
				return dst, err
			}
		}
		dst = append(dst, ']')
	}
	if rec.Total != 0 {
		dst = append(dst, `,"total_payment":`...)
		if dst, err = appendJSONFloat(dst, rec.Total); err != nil {
			return dst, err
		}
	}
	if rec.Solver != "" {
		dst = append(dst, `,"solver":`...)
		dst = appendJSONString(dst, rec.Solver)
	}
	if rec.CertLowerBound != 0 {
		dst = append(dst, `,"cert_lower_bound":`...)
		if dst, err = appendJSONFloat(dst, rec.CertLowerBound); err != nil {
			return dst, err
		}
	}
	if rec.CertRatio != 0 {
		dst = append(dst, `,"cert_ratio":`...)
		if dst, err = appendJSONFloat(dst, rec.CertRatio); err != nil {
			return dst, err
		}
	}
	return append(dst, '}'), nil
}

// appendBidRecord appends the wire form of a bid (submission) record.
func appendBidRecord(dst []byte, seq int, client string, inst batch.Instance) ([]byte, error) {
	cw, err := FromConfig(inst.Cfg)
	if err != nil {
		return dst, err
	}
	dst = append(dst, `{"type":"bid","seq":`...)
	dst = strconv.AppendInt(dst, int64(seq), 10)
	if client != "" {
		dst = append(dst, `,"client":`...)
		dst = appendJSONString(dst, client)
	}
	if len(inst.Bids) > 0 {
		dst = append(dst, `,"bids":[`...)
		for i := range inst.Bids {
			if i > 0 {
				dst = append(dst, ',')
			}
			if dst, err = appendBid(dst, inst.Bids[i]); err != nil {
				return dst, err
			}
		}
		dst = append(dst, ']')
	}
	dst = append(dst, `,"cfg":`...)
	if dst, err = appendConfigWire(dst, cw); err != nil {
		return dst, err
	}
	if inst.Solver != core.SolverExact {
		dst = append(dst, `,"solver":`...)
		dst = appendJSONString(dst, inst.Solver.String())
	}
	return append(dst, '}'), nil
}

// appendPayRecord appends the wire form of one per-winner payment
// record. The omitempty quirks of the json-tagged original carry over:
// a zero client index, bid index or amount is omitted.
func appendPayRecord(dst []byte, seq int, w WinnerRecord) ([]byte, error) {
	var err error
	dst = append(dst, `{"type":"pay","seq":`...)
	dst = strconv.AppendInt(dst, int64(seq), 10)
	if w.Client != 0 {
		dst = append(dst, `,"pay_client":`...)
		dst = strconv.AppendInt(dst, int64(w.Client), 10)
	}
	if w.BidIndex != 0 {
		dst = append(dst, `,"bid_index":`...)
		dst = strconv.AppendInt(dst, int64(w.BidIndex), 10)
	}
	if w.Payment != 0 {
		dst = append(dst, `,"amount":`...)
		if dst, err = appendJSONFloat(dst, w.Payment); err != nil {
			return dst, err
		}
	}
	return append(dst, '}'), nil
}

// appendOutcomeRecord appends the wire form of a commit marker.
func appendOutcomeRecord(dst []byte, rec *OutcomeRecord) ([]byte, error) {
	dst = append(dst, `{"type":"outcome","seq":`...)
	dst = strconv.AppendInt(dst, int64(rec.Seq), 10)
	dst = append(dst, `,"outcome":`...)
	dst, err := appendOutcomeBody(dst, rec)
	if err != nil {
		return dst, err
	}
	return append(dst, '}'), nil
}

// --- envelope peeking -------------------------------------------------
//
// Replay does not need to fully decode every record. Pay records are
// consumed for their sequence number alone (the ledger is rebuilt from
// the outcome's embedded winners), and bid bodies only matter for
// submissions still pending at the end of the log. peekEnvelope scans a
// payload for just the top-level "type" and "seq" keys, skipping every
// other value, so the common record costs zero decode allocations.

var errBadEnvelope = fmt.Errorf("marketd: undecodable WAL record envelope")

func skipJSONWS(p []byte, i int) int {
	for i < len(p) {
		switch p[i] {
		case ' ', '\t', '\n', '\r':
			i++
		default:
			return i
		}
	}
	return i
}

// skipJSONString advances past a string literal starting at the opening
// quote; returns the index after the closing quote, or -1.
func skipJSONString(p []byte, i int) int {
	if i >= len(p) || p[i] != '"' {
		return -1
	}
	for i++; i < len(p); i++ {
		switch p[i] {
		case '\\':
			i++ // skip the escaped byte; \uXXXX digits are all non-quote
		case '"':
			return i + 1
		}
	}
	return -1
}

// skipJSONValue advances past any JSON value starting at i; returns the
// index after the value, or -1 on malformed input.
func skipJSONValue(p []byte, i int) int {
	i = skipJSONWS(p, i)
	if i >= len(p) {
		return -1
	}
	switch p[i] {
	case '"':
		return skipJSONString(p, i)
	case '{', '[':
		depth := 0
		for i < len(p) {
			switch p[i] {
			case '{', '[':
				depth++
				i++
			case '}', ']':
				depth--
				i++
				if depth == 0 {
					return i
				}
			case '"':
				if i = skipJSONString(p, i); i < 0 {
					return -1
				}
			default:
				i++
			}
		}
		return -1
	default: // number, true, false, null
		for i < len(p) {
			switch p[i] {
			case ',', '}', ']', ' ', '\t', '\n', '\r':
				return i
			}
			i++
		}
		return i
	}
}

// peekEnvelope extracts the top-level type and seq of a WAL payload
// without decoding record bodies. Both keys must be present (they are,
// in every record either encoder has ever written).
func peekEnvelope(p []byte) (typ string, seq int, err error) {
	i := skipJSONWS(p, 0)
	if i >= len(p) || p[i] != '{' {
		return "", 0, errBadEnvelope
	}
	i = skipJSONWS(p, i+1)
	haveType, haveSeq := false, false
	for i < len(p) && p[i] != '}' {
		keyStart := i
		if i = skipJSONString(p, i); i < 0 {
			return "", 0, errBadEnvelope
		}
		key := p[keyStart+1 : i-1]
		i = skipJSONWS(p, i)
		if i >= len(p) || p[i] != ':' {
			return "", 0, errBadEnvelope
		}
		i = skipJSONWS(p, i+1)
		switch string(key) {
		case "type":
			vs := i
			if i = skipJSONString(p, i); i < 0 {
				return "", 0, errBadEnvelope
			}
			typ = string(p[vs+1 : i-1])
			haveType = true
		case "seq":
			neg := false
			if i < len(p) && p[i] == '-' {
				neg = true
				i++
			}
			start := i
			for i < len(p) && p[i] >= '0' && p[i] <= '9' {
				seq = seq*10 + int(p[i]-'0')
				i++
			}
			if i == start {
				return "", 0, errBadEnvelope
			}
			if neg {
				seq = -seq
			}
			haveSeq = true
		default:
			if i = skipJSONValue(p, i); i < 0 {
				return "", 0, errBadEnvelope
			}
		}
		if haveType && haveSeq {
			return typ, seq, nil
		}
		i = skipJSONWS(p, i)
		if i < len(p) && p[i] == ',' {
			i = skipJSONWS(p, i+1)
		}
	}
	return "", 0, errBadEnvelope
}
