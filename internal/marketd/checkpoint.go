package marketd

import (
	"encoding/json"
	"fmt"
	"sort"

	"github.com/fedauction/afl/internal/batch"
	"github.com/fedauction/afl/internal/core"
)

// recCheckpoint is the record type of a checkpoint snapshot: always the
// first record of a checkpoint-flagged segment, embedding everything
// recovery needs so that every earlier segment becomes prunable.
const recCheckpoint = "checkpoint"

// ledgerEntry is one client's cumulative payment inside a checkpoint.
type ledgerEntry struct {
	Client  int     `json:"client"`
	Payment float64 `json:"payment"`
}

// pendingEntry is one acknowledged-but-uncommitted submission inside a
// checkpoint: the bid record's durable content re-homed into the new
// segment, so pruning the segment holding the original bid record
// cannot lose the submission.
type pendingEntry struct {
	Seq    int         `json:"seq"`
	Bids   []core.Bid  `json:"bids,omitempty"`
	Cfg    *ConfigWire `json:"cfg,omitempty"`
	Solver string      `json:"solver,omitempty"`
}

// checkpointRecord is the folded state of the market at snapshot time.
// Seq carries the next sequence number (the snapshot horizon); Base and
// FoldedNext delimit the retained outcome window exactly as the live
// market holds it, so recovery from a checkpoint reconstructs the same
// state object-for-object. Ledger is the frontier fold over every
// committed sequence below FoldedNext — including outcomes the
// retention policy already evicted, which is why it must be restored
// verbatim rather than refolded.
type checkpointRecord struct {
	Type       string          `json:"type"`
	Seq        int             `json:"seq"`
	Base       int             `json:"base"`
	FoldedNext int             `json:"folded_next"`
	Ledger     []ledgerEntry   `json:"ledger,omitempty"`
	Outcomes   []OutcomeRecord `json:"outcomes,omitempty"`
	Pending    []pendingEntry  `json:"pending,omitempty"`
}

// encodeCheckpointLocked serializes the market's current folded state.
// Checkpoints are rare (every CheckpointEvery commits), so this uses
// plain json.Marshal; the per-record hot path never comes through here.
// Caller holds m.mu.
func (m *Market) encodeCheckpointLocked() ([]byte, error) {
	rec := checkpointRecord{
		Type:       recCheckpoint,
		Seq:        m.next,
		Base:       m.base,
		FoldedNext: m.foldedNext,
	}

	clients := make([]int, 0, len(m.ledger))
	for c := range m.ledger {
		clients = append(clients, c)
	}
	sort.Ints(clients)
	for _, c := range clients {
		rec.Ledger = append(rec.Ledger, ledgerEntry{Client: c, Payment: m.ledger[c]})
	}

	seqs := make([]int, 0, len(m.outcomes))
	for seq := range m.outcomes {
		seqs = append(seqs, seq)
	}
	sort.Ints(seqs)
	for _, seq := range seqs {
		rec.Outcomes = append(rec.Outcomes, m.outcomes[seq])
	}

	pend := make([]int, 0, len(m.pending))
	for seq := range m.pending {
		pend = append(pend, seq)
	}
	sort.Ints(pend)
	for _, seq := range pend {
		inst := m.pending[seq]
		cw, err := FromConfig(inst.Cfg)
		if err != nil {
			return nil, fmt.Errorf("marketd: checkpointing pending seq %d: %w", seq, err)
		}
		sv := ""
		if inst.Solver != core.SolverExact {
			sv = inst.Solver.String()
		}
		rec.Pending = append(rec.Pending, pendingEntry{
			Seq: seq, Bids: inst.Bids, Cfg: &cw, Solver: sv,
		})
	}
	return json.Marshal(rec)
}

// restoreCheckpoint loads a decoded checkpoint snapshot into the
// market's state and returns the pending instances it carried. Runs
// during recovery, before the consumer starts.
func (m *Market) restoreCheckpoint(rec checkpointRecord) (map[int]batch.Instance, error) {
	m.next = rec.Seq
	m.base = rec.Base
	m.foldedNext = rec.FoldedNext
	m.lastCkptSeq = rec.Seq
	for _, l := range rec.Ledger {
		m.ledger[l.Client] = l.Payment
	}
	for _, oc := range rec.Outcomes {
		m.outcomes[oc.Seq] = oc
	}
	pendingInst := make(map[int]batch.Instance, len(rec.Pending))
	for _, p := range rec.Pending {
		var cfg core.Config
		if p.Cfg != nil {
			cfg = p.Cfg.ToConfig()
		}
		solver, err := core.ParseSolver(p.Solver)
		if err != nil {
			return nil, fmt.Errorf("marketd: checkpoint pending seq %d: %w", p.Seq, err)
		}
		pendingInst[p.Seq] = batch.Instance{Bids: p.Bids, Cfg: cfg, Solver: solver}
		if p.Seq >= m.next {
			m.next = p.Seq + 1
		}
	}
	return pendingInst, nil
}

func decodeCheckpoint(payload []byte) (checkpointRecord, error) {
	var rec checkpointRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		return rec, fmt.Errorf("marketd: undecodable checkpoint record: %w", err)
	}
	if rec.Type != recCheckpoint {
		return rec, fmt.Errorf("marketd: checkpoint record with type %q", rec.Type)
	}
	return rec, nil
}
