package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func openCollect(t *testing.T, path string, opts Options) (*Log, [][]byte, RecoverStats) {
	t.Helper()
	var got [][]byte
	l, stats, err := Open(path, opts, func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	return l, got, stats
}

func TestAppendRecoverRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.wal")
	want := [][]byte{
		[]byte(`{"type":"bid","seq":0}`),
		[]byte(`{"type":"pay","seq":0,"amount":12.5}`),
		[]byte(``), // empty payloads are legal frames
		[]byte(`{"type":"outcome","seq":0}`),
	}
	l, got, stats := openCollect(t, path, Options{})
	if len(got) != 0 || stats.Records != 0 {
		t.Fatalf("fresh log recovered %d records", len(got))
	}
	for _, p := range want {
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, got, stats := openCollect(t, path, Options{})
	defer l2.Close()
	if stats.Records != len(want) || stats.DroppedBytes != 0 {
		t.Fatalf("recover stats = %+v, want %d records, 0 dropped", stats, len(want))
	}
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// appendRecords writes n records and closes the log, returning the
// clean file contents.
func appendRecords(t *testing.T, path string, n int) []byte {
	t.Helper()
	l, _, _ := openCollect(t, path, Options{})
	for i := 0; i < n; i++ {
		if err := l.Append([]byte(fmt.Sprintf(`{"seq":%d,"body":"record-%d"}`, i, i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return clean
}

func TestTornTailTruncated(t *testing.T) {
	// Every possible torn length of the final frame — from one missing
	// byte to only one byte of its header present — must recover to
	// exactly the first n-1 records and truncate the debris.
	path := filepath.Join(t.TempDir(), "log.wal")
	clean := appendRecords(t, path, 5)
	frames := splitFrames(t, clean)
	prefix := len(clean) - len(frames[4])

	for cut := 1; cut < len(frames[4]); cut++ {
		torn := clean[:len(clean)-cut]
		if err := os.WriteFile(path, torn, 0o644); err != nil {
			t.Fatal(err)
		}
		l, got, stats := openCollect(t, path, Options{})
		if len(got) != 4 {
			t.Fatalf("cut %d: recovered %d records, want 4", cut, len(got))
		}
		if stats.DroppedBytes != int64(len(torn)-prefix) {
			t.Fatalf("cut %d: dropped %d bytes, want %d", cut, stats.DroppedBytes, len(torn)-prefix)
		}
		// The file must be physically truncated to the valid boundary so
		// the next append starts a clean frame.
		if fi, err := os.Stat(path); err != nil || fi.Size() != int64(prefix) {
			t.Fatalf("cut %d: file size %d, want %d (err %v)", cut, fi.Size(), prefix, err)
		}
		if err := l.Append([]byte(`{"seq":4,"body":"rewritten"}`)); err != nil {
			t.Fatal(err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		_, got, _ = openCollect(t, path, Options{})
		if len(got) != 5 || string(got[4]) != `{"seq":4,"body":"rewritten"}` {
			t.Fatalf("cut %d: post-repair log has %d records, tail %q", cut, len(got), got[len(got)-1])
		}
	}
}

func TestCRCCorruptTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.wal")
	clean := appendRecords(t, path, 3)
	frames := splitFrames(t, clean)
	last := frames[2]

	// Flip one payload byte of the last frame: its CRC no longer matches,
	// so recovery must stop before it, deterministically.
	for _, flip := range []int{frameHeaderLen, len(last) - 2} {
		corrupt := append([]byte(nil), clean...)
		corrupt[len(clean)-len(last)+flip] ^= 0x40
		if err := os.WriteFile(path, corrupt, 0o644); err != nil {
			t.Fatal(err)
		}
		l, got, stats := openCollect(t, path, Options{})
		l.Close()
		if len(got) != 2 {
			t.Fatalf("flip %d: recovered %d records, want 2", flip, len(got))
		}
		if stats.DroppedBytes != int64(len(last)) {
			t.Fatalf("flip %d: dropped %d bytes, want %d", flip, stats.DroppedBytes, len(last))
		}
	}
}

func TestMidLogCorruptionDropsSuffix(t *testing.T) {
	// Corruption in the middle of the log ends the valid prefix: the
	// single-writer append-only invariant means everything after the bad
	// frame is unreachable debris. Recovery keeps the prefix and drops
	// the rest — deterministically, never with a panic.
	path := filepath.Join(t.TempDir(), "log.wal")
	clean := appendRecords(t, path, 6)
	frames := splitFrames(t, clean)
	// Corrupt frame 2's CRC header field.
	off := len(frames[0]) + len(frames[1]) + 4
	corrupt := append([]byte(nil), clean...)
	corrupt[off] ^= 0xFF
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	l, got, stats := openCollect(t, path, Options{})
	l.Close()
	if len(got) != 2 {
		t.Fatalf("recovered %d records, want 2", len(got))
	}
	wantDrop := int64(len(clean) - len(frames[0]) - len(frames[1]))
	if stats.DroppedBytes != wantDrop {
		t.Fatalf("dropped %d bytes, want %d", stats.DroppedBytes, wantDrop)
	}
}

func TestDuplicateFrameReplaysTwice(t *testing.T) {
	// The framing layer has no sequence semantics: a duplicated append
	// (the classic retry-after-lost-ack fault) replays as two identical
	// records. Deduplication is the reader's job — marketd keys records
	// by sequence number — so the WAL must surface both, deterministically.
	path := filepath.Join(t.TempDir(), "log.wal")
	clean := appendRecords(t, path, 2)
	frames := splitFrames(t, clean)
	dup := append(append([]byte(nil), clean...), frames[1]...)
	if err := os.WriteFile(path, dup, 0o644); err != nil {
		t.Fatal(err)
	}
	l, got, stats := openCollect(t, path, Options{})
	l.Close()
	if len(got) != 3 || stats.DroppedBytes != 0 {
		t.Fatalf("recovered %d records (%d dropped), want 3 (0)", len(got), stats.DroppedBytes)
	}
	if !bytes.Equal(got[1], got[2]) {
		t.Fatalf("duplicate frame decoded differently: %q vs %q", got[1], got[2])
	}
}

func TestAbsurdLengthPrefixRejected(t *testing.T) {
	// A corrupt length prefix claiming a giant payload must not drive a
	// giant allocation; it ends the valid prefix like any torn frame.
	path := filepath.Join(t.TempDir(), "log.wal")
	clean := appendRecords(t, path, 2)
	var header [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(header[:4], MaxRecordLen+1)
	bad := append(append([]byte(nil), clean...), header[:]...)
	bad = append(bad, []byte("garbage")...)
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	l, got, stats := openCollect(t, path, Options{})
	l.Close()
	if len(got) != 2 {
		t.Fatalf("recovered %d records, want 2", len(got))
	}
	if stats.DroppedBytes != int64(frameHeaderLen+len("garbage")) {
		t.Fatalf("dropped %d bytes", stats.DroppedBytes)
	}
}

func TestSyncBatching(t *testing.T) {
	// With SyncEvery=4, records reach the OS (and survive an Abort) only
	// at batch boundaries: Abort after 6 appends keeps exactly 4.
	path := filepath.Join(t.TempDir(), "log.wal")
	l, _, _ := openCollect(t, path, Options{SyncEvery: 4})
	for i := 0; i < 6; i++ {
		if err := l.Append([]byte(fmt.Sprintf(`{"seq":%d}`, i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Abort(); err != nil {
		t.Fatal(err)
	}
	_, got, _ := openCollect(t, path, Options{})
	if len(got) != 4 {
		t.Fatalf("abort after 6 appends at SyncEvery=4 kept %d records, want 4", len(got))
	}

	// Close, by contrast, flushes the partial batch.
	l2, _, _ := openCollect(t, path, Options{SyncEvery: 4})
	for i := 0; i < 6; i++ {
		if err := l2.Append([]byte(fmt.Sprintf(`{"extra":%d}`, i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	_, got, _ = openCollect(t, path, Options{})
	if len(got) != 10 {
		t.Fatalf("close kept %d records, want 10", len(got))
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.wal")
	l, _, _ := openCollect(t, path, Options{})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("x")); err != ErrClosed {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
	if err := l.Sync(); err != ErrClosed {
		t.Fatalf("Sync after Close = %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil (idempotent)", err)
	}
}

func TestStatsTrackAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.wal")
	l, _, stats := openCollect(t, path, Options{})
	if stats.Records != 0 {
		t.Fatal("fresh log has records")
	}
	payload := []byte(`{"a":1}`)
	for i := 1; i <= 3; i++ {
		if err := l.Append(payload); err != nil {
			t.Fatal(err)
		}
		s := l.Stats()
		if s.Records != i {
			t.Fatalf("after %d appends Stats().Records = %d", i, s.Records)
		}
		want := int64(i) * int64(frameHeaderLen+len(payload)+1)
		if s.ValidBytes != want {
			t.Fatalf("after %d appends ValidBytes = %d, want %d", i, s.ValidBytes, want)
		}
	}
	l.Close()
}

// splitFrames re-parses a clean log file into its frames using the
// exported decoder, so tests can splice at exact frame boundaries.
func splitFrames(t *testing.T, b []byte) [][]byte {
	t.Helper()
	var frames [][]byte
	for len(b) > 0 {
		_, n, ok := DecodeFrame(b)
		if !ok {
			t.Fatalf("clean log failed to decode at %d frames", len(frames))
		}
		frames = append(frames, b[:n])
		b = b[n:]
	}
	return frames
}

func TestEncodeDecodeFrame(t *testing.T) {
	for _, payload := range [][]byte{nil, []byte("x"), []byte(`{"k":"v"}`), bytes.Repeat([]byte("a"), 4096)} {
		frame := EncodeFrame(nil, payload)
		got, n, ok := DecodeFrame(frame)
		if !ok || n != len(frame) || !bytes.Equal(got, payload) {
			t.Fatalf("roundtrip failed for %d-byte payload (ok=%v n=%d)", len(payload), ok, n)
		}
	}
}
