package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALSegment throws hostile multi-segment directories at OpenDir:
// an arbitrary base segment, an optional checkpoint-flagged segment
// with arbitrary bytes (valid, torn, or empty), and an arbitrary tail
// segment. The invariants:
//
//  1. OpenDir never panics and never errors on corrupt data —
//     corruption ends the valid prefix of the directory, it is not an
//     I/O failure;
//  2. recovery is deterministic and self-healing: after one open, a
//     second open replays exactly the same records with zero dropped
//     bytes;
//  3. the healed directory accepts appends and a third open sees the
//     recovered prefix plus the new record, in order.
func FuzzWALSegment(f *testing.F) {
	frames := func(payloads ...string) []byte {
		var b []byte
		for _, p := range payloads {
			b = EncodeFrame(b, []byte(p))
		}
		return b
	}
	base := frames(`{"type":"bid","seq":1}`, `{"type":"outcome","seq":1}`)
	ckpt := frames(`{"type":"checkpoint","next":2}`, `{"type":"bid","seq":2}`)
	tail := frames(`{"type":"bid","seq":3}`, `{"type":"outcome","seq":3}`)

	f.Add(base, ckpt, tail, true)
	f.Add(base, []byte{}, tail, true)                 // rotate-crash debris: empty checkpoint
	f.Add(base, ckpt[:len(ckpt)-5], tail, true)       // torn checkpoint tail
	f.Add(base, ckpt[:3], tail, true)                 // torn checkpoint header
	f.Add(base, ckpt, tail[:len(tail)-7], true)       // torn final tail
	f.Add(base[:9], ckpt, tail, true)                 // torn base before the checkpoint
	f.Add(base, ckpt, tail, false)                    // plain rotation, no checkpoint
	f.Add([]byte{}, []byte{}, []byte{}, true)         // all empty
	f.Add(base, append(ckpt, 0xFF, 0xAB), tail, true) // garbage after checkpoint frames

	f.Fuzz(func(t *testing.T, seg0, seg1 []byte, seg2 []byte, ckptFlag bool) {
		dir := t.TempDir()
		path := filepath.Join(dir, "market.wal")
		if err := os.WriteFile(path, seg0, 0o644); err != nil {
			t.Fatal(err)
		}
		name1 := "market-000001.wal"
		if ckptFlag {
			name1 = "market-000001.ckpt.wal"
		}
		if err := os.WriteFile(filepath.Join(dir, name1), seg1, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "market-000002.wal"), seg2, 0o644); err != nil {
			t.Fatal(err)
		}

		open := func() (DirStats, [][]byte) {
			var rec [][]byte
			l, st, err := OpenDir(path, DirOptions{NoSync: true}, func(p []byte) error {
				rec = append(rec, append([]byte(nil), p...))
				return nil
			})
			if err != nil {
				t.Fatalf("OpenDir on fuzzed directory: %v", err)
			}
			if err := l.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			return st, rec
		}

		st1, rec1 := open()
		st2, rec2 := open()
		if st2.DroppedBytes != 0 {
			t.Fatalf("recovered directory still drops %d bytes", st2.DroppedBytes)
		}
		if st1.Records != st2.Records || len(rec1) != len(rec2) {
			t.Fatalf("recovery not stable: %d/%d records vs %d/%d",
				st1.Records, len(rec1), st2.Records, len(rec2))
		}
		if st1.StartCheckpoint != st2.StartCheckpoint {
			t.Fatalf("checkpoint selection not stable: %v vs %v",
				st1.StartCheckpoint, st2.StartCheckpoint)
		}
		for i := range rec1 {
			if !bytes.Equal(rec1[i], rec2[i]) {
				t.Fatalf("record %d differs across recoveries", i)
			}
		}

		// The healed directory is live: append one record, reopen, and
		// the prefix plus the new record come back in order.
		l, _, err := OpenDir(path, DirOptions{NoSync: true}, func([]byte) error { return nil })
		if err != nil {
			t.Fatal(err)
		}
		extra := []byte(`{"type":"bid","seq":99}`)
		if err := l.Append(extra); err != nil {
			t.Fatalf("Append on healed directory: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		st3, rec3 := open()
		if st3.Records != st2.Records+1 || len(rec3) != len(rec2)+1 {
			t.Fatalf("post-append recovery: %d records, want %d", st3.Records, st2.Records+1)
		}
		for i := range rec2 {
			if !bytes.Equal(rec3[i], rec2[i]) {
				t.Fatalf("record %d changed after append", i)
			}
		}
		if !bytes.Equal(rec3[len(rec3)-1], extra) {
			t.Fatalf("appended record lost: %s", rec3[len(rec3)-1])
		}
	})
}
