package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALRecord throws arbitrary bytes at the frame decoder and the
// file-level recovery scan. The invariants under fuzz:
//
//  1. DecodeFrame never panics, and when it accepts a frame the frame
//     re-encodes to exactly the bytes it consumed (decode∘encode = id);
//  2. Open on an arbitrary file never panics and never errors on
//     corrupt data (corruption ends the valid prefix, it is not an I/O
//     failure), and recovery is deterministic: scanning the same bytes
//     twice yields the same records and the same truncation point;
//  3. after recovery the file is clean: reopening recovers the same
//     records with zero dropped bytes.
func FuzzWALRecord(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeFrame(nil, []byte(`{"type":"bid","seq":1}`)))
	two := EncodeFrame(nil, []byte(`{"a":1}`))
	two = EncodeFrame(two, []byte(`{"b":2}`))
	f.Add(two)
	f.Add(two[:len(two)-3])                                 // torn tail
	f.Add(append(two, 0xFF, 0x00, 0xAB))                    // trailing garbage
	f.Add(append(two, two[len(two)-17:]...))                // duplicated tail fragment
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0, '\n'}) // absurd length

	f.Fuzz(func(t *testing.T, data []byte) {
		// Frame-level: decode what we can, check decode∘encode identity.
		rest := data
		for {
			payload, n, ok := DecodeFrame(rest)
			if !ok {
				break
			}
			if re := EncodeFrame(nil, payload); !bytes.Equal(re, rest[:n]) {
				t.Fatalf("decode∘encode mismatch on %d-byte frame", n)
			}
			rest = rest[n:]
		}

		// File-level: recovery must be deterministic and self-healing.
		path := filepath.Join(t.TempDir(), "fuzz.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		var first [][]byte
		l, stats1, err := Open(path, Options{NoSync: true}, func(p []byte) error {
			first = append(first, append([]byte(nil), p...))
			return nil
		})
		if err != nil {
			t.Fatalf("Open on fuzzed bytes: %v", err)
		}
		l.Close()

		var second [][]byte
		l2, stats2, err := Open(path, Options{NoSync: true}, func(p []byte) error {
			second = append(second, append([]byte(nil), p...))
			return nil
		})
		if err != nil {
			t.Fatalf("re-Open after recovery: %v", err)
		}
		l2.Close()

		if stats2.DroppedBytes != 0 {
			t.Fatalf("recovered file still drops %d bytes", stats2.DroppedBytes)
		}
		if stats1.Records != stats2.Records || len(first) != len(second) {
			t.Fatalf("recovery not stable: %d/%d records vs %d/%d",
				stats1.Records, len(first), stats2.Records, len(second))
		}
		for i := range first {
			if !bytes.Equal(first[i], second[i]) {
				t.Fatalf("record %d differs across recoveries", i)
			}
		}
	})
}
