package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// openDir opens a DirLog collecting replayed payload copies.
func openDir(t *testing.T, path string, opts DirOptions) (*DirLog, DirStats, [][]byte) {
	t.Helper()
	var replayed [][]byte
	l, st, err := OpenDir(path, opts, func(p []byte) error {
		replayed = append(replayed, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return l, st, replayed
}

func payloadN(i int) []byte { return []byte(fmt.Sprintf(`{"rec":%d}`, i)) }

// TestDirLogSingleSegmentCompat pins that a DirLog with no rotation
// options behaves exactly like the single-file Log: one file, same
// bytes, and wal.Open can read what DirLog wrote (and vice versa).
func TestDirLogSingleSegmentCompat(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "market.wal")

	l, _, _ := openDir(t, path, DirOptions{NoSync: true})
	for i := 0; i < 10; i++ {
		if err := l.Append(payloadN(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Byte-identical to the single-file writer.
	var want []byte
	for i := 0; i < 10; i++ {
		want = EncodeFrame(want, payloadN(i))
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("DirLog file diverges from Log frame format")
	}

	// The single-file reader replays it.
	n := 0
	sl, st, err := Open(path, Options{NoSync: true}, func(p []byte) error { n++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	sl.Close()
	if n != 10 || st.Records != 10 || st.DroppedBytes != 0 {
		t.Fatalf("wal.Open replayed %d records (stats %+v), want 10 clean", n, st)
	}

	// And no sibling segment files appeared.
	segs, err := Segments(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || segs[0].Index != 0 {
		t.Fatalf("segments = %+v, want just the base file", segs)
	}
}

// TestDirLogRotationByRecords drives record-count rotation and checks
// the directory layout, replay order and stats.
func TestDirLogRotationByRecords(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "market.wal")
	var rotated []int
	l, _, _ := openDir(t, path, DirOptions{
		NoSync: true, SegmentRecords: 4,
		OnRotate: func(seg int, ckpt bool) {
			if ckpt {
				t.Errorf("plain rotation flagged as checkpoint")
			}
			rotated = append(rotated, seg)
		},
	})
	for i := 0; i < 10; i++ {
		if err := l.Append(payloadN(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Segments != 3 {
		t.Fatalf("segments = %d, want 3 (4+4+2 records)", st.Segments)
	}
	if len(rotated) != 2 || rotated[0] != 1 || rotated[1] != 2 {
		t.Fatalf("rotations = %v, want [1 2]", rotated)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, st2, replayed := openDir(t, path, DirOptions{NoSync: true, SegmentRecords: 4})
	if st2.Records != 10 || st2.Segments != 3 || st2.DroppedBytes != 0 {
		t.Fatalf("recovery stats %+v, want 10 records over 3 segments", st2)
	}
	for i, p := range replayed {
		if !bytes.Equal(p, payloadN(i)) {
			t.Fatalf("replayed[%d] = %s, want %s", i, p, payloadN(i))
		}
	}
}

// TestDirLogRotationBySize pins the size trigger: a segment never
// rotates empty, and no segment exceeds the bound unless a single
// record does.
func TestDirLogRotationBySize(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "market.wal")
	l, _, _ := openDir(t, path, DirOptions{NoSync: true, SegmentBytes: 64})
	big := bytes.Repeat([]byte("x"), 100) // single record above the bound
	if err := l.Append(big); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := l.Append(payloadN(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := Segments(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("size rotation never fired: %+v", segs)
	}
	_, st, replayed := openDir(t, path, DirOptions{NoSync: true})
	if st.Records != 5 || len(replayed) != 5 {
		t.Fatalf("replayed %d records, want 5", st.Records)
	}
	if !bytes.Equal(replayed[0], big) {
		t.Fatal("oversized record lost")
	}
}

// TestDirLogCheckpointRecoveryStartsAtTail: after Rotate(true) + a
// checkpoint record, recovery replays only the checkpoint and the tail,
// and Prune removes the covered history.
func TestDirLogCheckpointRecoveryStartsAtTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "market.wal")
	l, _, _ := openDir(t, path, DirOptions{NoSync: true})
	for i := 0; i < 6; i++ {
		if err := l.Append(payloadN(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Rotate(true); err != nil {
		t.Fatal(err)
	}
	ckpt := []byte(`{"ckpt":true}`)
	if err := l.AppendDeferred(ckpt); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	for i := 6; i < 9; i++ {
		if err := l.Append(payloadN(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Without pruning: recovery starts at the checkpoint, skipping the
	// base segment.
	_, st, replayed := openDir(t, path, DirOptions{NoSync: true})
	if !st.StartCheckpoint || st.SkippedSegments != 1 {
		t.Fatalf("stats %+v, want recovery from the checkpoint segment", st)
	}
	if st.Records != 4 || st.TailRecords != 3 {
		t.Fatalf("replayed %d records (%d tail), want 4 (3 tail)", st.Records, st.TailRecords)
	}
	if !bytes.Equal(replayed[0], ckpt) {
		t.Fatalf("first replayed record = %s, want the checkpoint", replayed[0])
	}
	for i := 1; i < 4; i++ {
		if !bytes.Equal(replayed[i], payloadN(5+i)) {
			t.Fatalf("tail[%d] = %s, want %s", i, replayed[i], payloadN(5+i))
		}
	}

	// Prune removes the base segment; recovery is unchanged.
	l2, _, _ := openDir(t, path, DirOptions{NoSync: true})
	n, err := l2.Prune()
	if err != nil || n != 1 {
		t.Fatalf("pruned %d segments (%v), want 1", n, err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("base segment survived pruning")
	}
	_, st3, replayed3 := openDir(t, path, DirOptions{NoSync: true})
	if st3.Records != 4 || len(replayed3) != 4 || st3.SkippedSegments != 0 {
		t.Fatalf("post-prune recovery stats %+v", st3)
	}
}

// TestDirLogTornCheckpointFallsBack tears the checkpoint record itself
// and requires recovery to fall back to full replay, deleting the
// failed checkpoint segment.
func TestDirLogTornCheckpointFallsBack(t *testing.T) {
	for _, tear := range []string{"empty", "partial"} {
		t.Run(tear, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "market.wal")
			l, _, _ := openDir(t, path, DirOptions{NoSync: true})
			for i := 0; i < 5; i++ {
				if err := l.Append(payloadN(i)); err != nil {
					t.Fatal(err)
				}
			}
			if err := l.Rotate(true); err != nil {
				t.Fatal(err)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			ckptPath := filepath.Join(dir, "market-000001.ckpt.wal")
			if _, err := os.Stat(ckptPath); err != nil {
				t.Fatalf("checkpoint segment missing: %v", err)
			}
			if tear == "partial" {
				// A frame header promising more bytes than follow.
				if err := os.WriteFile(ckptPath, []byte{200, 0, 0, 0, 1, 2, 3, 4, 9}, 0o644); err != nil {
					t.Fatal(err)
				}
			}

			_, st, replayed := openDir(t, path, DirOptions{NoSync: true})
			if st.StartCheckpoint {
				t.Fatal("recovery trusted a torn checkpoint")
			}
			if st.Records != 5 || len(replayed) != 5 {
				t.Fatalf("replayed %d records, want the full 5", st.Records)
			}
			if tear == "partial" && st.DroppedBytes == 0 {
				t.Fatal("torn checkpoint bytes not counted as dropped")
			}
			if _, err := os.Stat(ckptPath); !os.IsNotExist(err) {
				t.Fatal("failed checkpoint segment not deleted")
			}
		})
	}
}

// TestDirLogTornTailMidDirectory corrupts a middle segment and checks
// the whole-directory valid-prefix rule: the segment truncates at the
// corruption and every later segment is deleted.
func TestDirLogTornTailMidDirectory(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "market.wal")
	l, _, _ := openDir(t, path, DirOptions{NoSync: true, SegmentRecords: 2})
	for i := 0; i < 6; i++ { // segments: [0 1] [2 3] [4 5]
		if err := l.Append(payloadN(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte in the second segment's second record.
	segPath := filepath.Join(dir, "market-000001.wal")
	data, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0xff
	if err := os.WriteFile(segPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, st, replayed := openDir(t, path, DirOptions{NoSync: true, SegmentRecords: 2})
	if st.Records != 3 || len(replayed) != 3 {
		t.Fatalf("replayed %d records, want 3 (prefix before the corruption)", st.Records)
	}
	if st.DroppedBytes == 0 {
		t.Fatal("corruption dropped no bytes")
	}
	if _, err := os.Stat(filepath.Join(dir, "market-000002.wal")); !os.IsNotExist(err) {
		t.Fatal("segment after the corruption survived")
	}
	// Deterministic self-healing: a second open is clean.
	_, st2, replayed2 := openDir(t, path, DirOptions{NoSync: true, SegmentRecords: 2})
	if st2.DroppedBytes != 0 || st2.Records != 3 || len(replayed2) != 3 {
		t.Fatalf("second open not clean: %+v", st2)
	}
}

// TestDirLogGroupCommitDurability: records appended in group mode are
// not durable until Commit returns, and concurrent commits coalesce
// into fewer fsyncs than records.
func TestDirLogGroupCommitDurability(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "market.wal")
	var batches []int
	var batchMu sync.Mutex
	l, _, _ := openDir(t, path, DirOptions{
		GroupCommit: true,
		OnGroupCommit: func(n int, _ time.Duration) {
			batchMu.Lock()
			batches = append(batches, n)
			batchMu.Unlock()
		},
	})

	const writers, perWriter = 8, 5
	var wg sync.WaitGroup
	errs := make(chan error, writers*perWriter)
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := l.Append(payloadN(w*100 + i)); err != nil {
					errs <- err
					return
				}
				if err := l.Commit(); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := l.Stats()
	if st.Records != writers*perWriter {
		t.Fatalf("records = %d, want %d", st.Records, writers*perWriter)
	}
	batchMu.Lock()
	total := 0
	for _, b := range batches {
		total += b
	}
	batchMu.Unlock()
	if total != writers*perWriter {
		t.Fatalf("group-commit batches cover %d records, want %d", total, writers*perWriter)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, st2, _ := openDir(t, path, DirOptions{NoSync: true})
	if st2.Records != writers*perWriter {
		t.Fatalf("recovered %d records, want %d", st2.Records, writers*perWriter)
	}
}

// TestDirLogGroupCommitAbortLosesTail: in group mode an Abort after
// uncommitted appends loses exactly the buffered tail — committed
// records survive.
func TestDirLogGroupCommitAbortLosesTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "market.wal")
	l, _, _ := openDir(t, path, DirOptions{GroupCommit: true})
	for i := 0; i < 3; i++ {
		if err := l.Append(payloadN(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	for i := 3; i < 7; i++ { // appended, never committed
		if err := l.Append(payloadN(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Abort(); err != nil {
		t.Fatal(err)
	}
	_, st, replayed := openDir(t, path, DirOptions{NoSync: true})
	if st.Records != 3 {
		t.Fatalf("recovered %d records, want the 3 committed", st.Records)
	}
	for i, p := range replayed {
		if !bytes.Equal(p, payloadN(i)) {
			t.Fatalf("survivor %d = %s", i, p)
		}
	}
	// Commit after Abort reports closure.
	if err := l.Commit(); err != ErrClosed {
		t.Fatalf("Commit after Abort = %v, want ErrClosed", err)
	}
}

// TestDirLogCheckpointDebrisAfterRotateCrash simulates the crash
// between rotation and the first checkpoint append: the empty
// checkpoint segment must be discarded, not adopted as a start point.
func TestDirLogCheckpointDebrisAfterRotateCrash(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "market.wal")
	l, _, _ := openDir(t, path, DirOptions{NoSync: true})
	for i := 0; i < 4; i++ {
		if err := l.Append(payloadN(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Rotate(true); err != nil {
		t.Fatal(err)
	}
	if err := l.Abort(); err != nil { // dies before the checkpoint record
		t.Fatal(err)
	}

	l2, st, replayed := openDir(t, path, DirOptions{NoSync: true})
	if st.StartCheckpoint || st.Records != 4 || len(replayed) != 4 {
		t.Fatalf("recovery from rotate-crash debris: %+v", st)
	}
	// Appends continue; the dead checkpoint segment's index is reused by
	// a plain segment on the next rotation, never by accident.
	if err := l2.Append(payloadN(4)); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	_, st2, _ := openDir(t, path, DirOptions{NoSync: true})
	if st2.Records != 5 {
		t.Fatalf("recovered %d records after debris restart, want 5", st2.Records)
	}
}

// TestDirLogSyncIntervalCoalesces: with a sync interval, many quick
// sequential commits share fsyncs.
func TestDirLogSyncIntervalCoalesces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "market.wal")
	l, _, _ := openDir(t, path, DirOptions{GroupCommit: true, SyncInterval: 5 * time.Millisecond})
	const writers = 6
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := l.Append(payloadN(w)); err == nil {
				l.Commit()
			}
		}()
	}
	wg.Wait()
	st := l.Stats()
	if st.Syncs >= writers {
		t.Fatalf("interval coalescing did nothing: %d fsyncs for %d commits", st.Syncs, writers)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}
