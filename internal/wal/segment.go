package wal

// This file is the segmented layer over the single-file frame format of
// wal.go: a DirLog is a directory of Log-format segment files with
// size/record-count rotation, checkpoint-flagged segments that bound
// recovery to the tail since the last checkpoint, pruning of fully
// checkpointed history, and an optional group-commit syncer that
// coalesces concurrent Commit callers into one fsync.
//
// Layout. Segment 0 is the base file the caller names (for the market,
// "market.wal" — byte-compatible with a pre-segmentation log). Rotated
// segments live next to it as "<stem>-000001.wal", and a segment opened
// to hold a checkpoint as "<stem>-000001.ckpt.wal". Indices only grow;
// gaps (from pruning) are fine. A completed segment is flushed, fsynced
// and never written again, so every byte before the active tail is
// immutable.
//
// Recovery. OpenDir picks the newest checkpoint-flagged segment whose
// first frame is valid and replays forward from there; everything older
// is prunable history the checkpoint already summarizes. A checkpoint
// segment whose first frame is torn or missing is the debris of a
// checkpoint that never committed: it is deleted and recovery falls back
// to the previous checkpoint (or segment 0) — the crash between
// "rotate" and "checkpoint durable" loses nothing, because pruning only
// ever runs after the checkpoint record is on disk. Within the replayed
// range the single-file rules apply per segment: the scan stops at the
// first invalid frame, the segment is truncated there, and any later
// segments are deleted, so the directory as a whole recovers to one
// deterministic valid prefix.
//
// Group commit. With Options.GroupCommit a dedicated syncer goroutine
// owns fsync: Append never syncs inline, and Commit blocks until a group
// fsync covers the caller's records. Concurrent committers that arrive
// while a sync is in flight are coalesced into the next one (bounded by
// SyncInterval), so at SyncEvery=1 durability the disk pays one fsync
// per batch of concurrent producers instead of one per record.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// DirOptions configures a segmented log.
type DirOptions struct {
	// SyncEvery and NoSync follow Options: the per-append fsync policy of
	// the non-group-commit path.
	SyncEvery int
	NoSync    bool
	// SegmentBytes rotates the active segment before an append would push
	// it past this many bytes. 0 disables size rotation.
	SegmentBytes int64
	// SegmentRecords rotates the active segment once it holds this many
	// records. 0 disables record-count rotation.
	SegmentRecords int
	// GroupCommit enables the dedicated syncer goroutine: Append never
	// fsyncs inline (SyncEvery is ignored), Commit blocks until a group
	// fsync covers the caller's appends.
	GroupCommit bool
	// SyncInterval is the group-commit coalescing window: the syncer
	// waits this long after the first pending commit before fsyncing, so
	// more committers can join the batch. 0 (the default) syncs as soon
	// as the syncer is free — the fsync latency itself is then the
	// coalescing window.
	SyncInterval time.Duration
	// OnRotate, when non-nil, is called after each segment rotation with
	// the new segment's index and checkpoint flag. Called with the log's
	// lock held: it must return quickly and must not call back into the
	// log.
	OnRotate func(seg int, checkpoint bool)
	// OnGroupCommit, when non-nil, is called after each successful group
	// fsync with the number of records it made durable and the sync
	// latency. Called without the log's lock.
	OnGroupCommit func(records int, dur time.Duration)
}

// SegmentInfo describes one live segment file.
type SegmentInfo struct {
	// Index is the segment's rotation index; 0 is the base file.
	Index int
	// Checkpoint reports whether the segment was opened to hold a
	// checkpoint record as its first frame.
	Checkpoint bool
	// Path is the file path.
	Path string
	// Size is the valid byte length.
	Size int64
}

// DirStats extends RecoverStats with the directory-level recovery
// picture; Stats returns it updated with appends since open.
type DirStats struct {
	// Records is the number of records replayed at open plus records
	// appended since.
	Records int
	// TailRecords is the number of replayed records after the checkpoint
	// record (equal to the full replay count when recovery started at
	// segment 0).
	TailRecords int
	// StartCheckpoint reports whether recovery started at a checkpoint
	// segment instead of replaying from segment 0.
	StartCheckpoint bool
	// SkippedSegments counts the prunable segments before the recovery
	// start point that were not replayed.
	SkippedSegments int
	// Segments is the number of live segment files.
	Segments int
	// LastCheckpointSegment is the index of the newest live
	// checkpoint-flagged segment, -1 when none exists.
	LastCheckpointSegment int
	// TotalBytes is the byte length of every live segment file,
	// including skipped (prunable) ones.
	TotalBytes int64
	// DroppedBytes counts torn/corrupt bytes discarded at open: the
	// truncated tail plus any deleted later segments.
	DroppedBytes int64
	// Syncs counts fsyncs performed since open.
	Syncs int64
}

// DirLog is a segmented single-writer append-only log. Append,
// AppendDeferred, Commit, Rotate, Prune, Sync and Close are safe for
// concurrent use (unlike the single-file Log, because group commit
// makes concurrent committers the point).
type DirLog struct {
	dir  string
	stem string // base path without the ".wal" suffix
	base string // segment-0 path
	opts DirOptions

	mu            sync.Mutex
	f             *os.File
	w             *bufio.Writer
	scratch       [frameHeaderLen]byte
	segs          []SegmentInfo // ascending replay order; last is active
	openStats     DirStats
	records       int64 // appended since open
	synced        int64 // appended records covered by an fsync
	unsynced      int   // appends since the last sync (legacy policy)
	activeRecords int   // records in the active segment
	syncs         int64
	totalBytes    int64
	closed        bool
	syncErr       error

	// Group-commit machinery (nil/unused when !opts.GroupCommit).
	syncCond    *sync.Cond
	waitCond    *sync.Cond
	pendingSync bool
	syncing     bool
	syncerDone  chan struct{}
}

// OpenDir opens (creating if absent) the segmented log whose base
// segment is path, recovers the directory to a deterministic valid
// prefix, and replays it. fn, when non-nil, is called once per
// recovered payload in order — starting from the newest valid
// checkpoint segment, so a caller that wrote checkpoints gets the
// checkpoint record first and only the tail after it. The returned
// stats describe what recovery found.
func OpenDir(path string, opts DirOptions, fn func(payload []byte) error) (*DirLog, DirStats, error) {
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = 1
	}
	l := &DirLog{
		dir:  filepath.Dir(path),
		stem: strings.TrimSuffix(path, ".wal"),
		base: path,
		opts: opts,
	}
	l.waitCond = sync.NewCond(&l.mu)

	if err := os.MkdirAll(l.dir, 0o755); err != nil {
		return nil, DirStats{}, fmt.Errorf("wal: create %s: %w", l.dir, err)
	}
	segs, err := listSegments(path)
	if err != nil {
		return nil, DirStats{}, err
	}
	if len(segs) == 0 {
		segs = []SegmentInfo{{Index: 0, Path: path}}
	}

	stats, err := l.recoverSegments(segs, fn)
	if err != nil {
		return nil, stats, err
	}
	l.openStats = stats

	if opts.GroupCommit {
		l.syncCond = sync.NewCond(&l.mu)
		l.syncerDone = make(chan struct{})
		go l.syncLoop()
	}
	return l, stats, nil
}

// listSegments discovers the live segment files of the log at base,
// sorted into replay order (ascending index; a plain segment sorts
// before a checkpoint segment of the same index, which only hostile
// directories produce). Exported via Segments for tests and tooling.
func listSegments(base string) ([]SegmentInfo, error) {
	dir := filepath.Dir(base)
	stem := strings.TrimSuffix(filepath.Base(base), ".wal")
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: list %s: %w", dir, err)
	}
	var segs []SegmentInfo
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		info := SegmentInfo{Path: filepath.Join(dir, name)}
		switch {
		case name == filepath.Base(base):
			// Segment 0, the base file.
		case strings.HasPrefix(name, stem+"-"):
			rest := strings.TrimPrefix(name, stem+"-")
			if strings.HasSuffix(rest, ".ckpt.wal") {
				info.Checkpoint = true
				rest = strings.TrimSuffix(rest, ".ckpt.wal")
			} else if strings.HasSuffix(rest, ".wal") {
				rest = strings.TrimSuffix(rest, ".wal")
			} else {
				continue
			}
			idx := 0
			ok := len(rest) > 0
			for _, c := range rest {
				if c < '0' || c > '9' {
					ok = false
					break
				}
				idx = idx*10 + int(c-'0')
			}
			if !ok {
				continue
			}
			info.Index = idx
		default:
			continue
		}
		if fi, err := e.Info(); err == nil {
			info.Size = fi.Size()
		}
		segs = append(segs, info)
	}
	sort.Slice(segs, func(i, j int) bool {
		if segs[i].Index != segs[j].Index {
			return segs[i].Index < segs[j].Index
		}
		return !segs[i].Checkpoint && segs[j].Checkpoint
	})
	return segs, nil
}

// Segments lists the live segment files of the log whose base segment
// is path, in replay order.
func Segments(path string) ([]SegmentInfo, error) { return listSegments(path) }

// recoverSegments replays the directory into fn and positions the log
// for appending. Single-goroutine (runs before the syncer starts).
func (l *DirLog) recoverSegments(segs []SegmentInfo, fn func([]byte) error) (DirStats, error) {
	stats := DirStats{LastCheckpointSegment: -1}

	// Recovery starts at the newest checkpoint segment whose first frame
	// is valid; a torn first frame means the checkpoint never committed,
	// so fall back to the previous one (or segment 0).
	// The newest checkpoint can sit at list position 0 when pruning
	// already removed everything it covers, so the scan includes it.
	start := 0
	for i := len(segs) - 1; i >= 0; i-- {
		if segs[i].Checkpoint && firstFrameValid(segs[i].Path) {
			start = i
			stats.StartCheckpoint = true
			break
		}
	}
	stats.SkippedSegments = start

	// Replay from the start segment; the first invalid frame truncates
	// its segment and deletes everything after it.
	end := len(segs)
	counts := make([]int, len(segs)) // records per replayed segment
	for i := start; i < end; i++ {
		f, err := os.OpenFile(segs[i].Path, os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			return stats, fmt.Errorf("wal: open segment %s: %w", segs[i].Path, err)
		}
		st, err := scan(f, fn)
		if err != nil {
			f.Close()
			return stats, err
		}
		stats.Records += st.Records
		counts[i] = st.Records
		if i == start && stats.StartCheckpoint && st.Records > 0 {
			// The checkpoint record itself is not tail.
			stats.TailRecords -= 1
		}
		stats.TailRecords += st.Records
		segs[i].Size = st.ValidBytes
		if st.DroppedBytes > 0 {
			stats.DroppedBytes += st.DroppedBytes
			if err := f.Truncate(st.ValidBytes); err != nil {
				f.Close()
				return stats, fmt.Errorf("wal: truncate torn tail of %s: %w", segs[i].Path, err)
			}
			for j := i + 1; j < end; j++ {
				stats.DroppedBytes += segs[j].Size
				if err := os.Remove(segs[j].Path); err != nil {
					f.Close()
					return stats, fmt.Errorf("wal: drop segment after torn tail: %w", err)
				}
			}
			end = i + 1
			f.Close()
			break
		}
		f.Close()
	}
	segs = segs[:end]
	counts = counts[:end]

	// A checkpoint segment recovered empty is the debris of a checkpoint
	// that never reached its first durable frame; keeping it would let
	// appends land in a checkpoint-flagged segment whose first record is
	// not a checkpoint, which a later restart could mistake for a
	// recovery start point. Delete it and fall back to the previous
	// segment. Only the last segment can be in this state after the
	// truncation pass, but hostile directories can stack several. The
	// start segment itself is never debris: it was selected for having a
	// valid first frame.
	for len(segs) > start+1 {
		last := segs[len(segs)-1]
		if !last.Checkpoint || last.Size > 0 {
			break
		}
		if err := os.Remove(last.Path); err != nil {
			return stats, fmt.Errorf("wal: drop empty checkpoint segment: %w", err)
		}
		segs = segs[:len(segs)-1]
		counts = counts[:len(counts)-1]
	}
	if len(segs) == 0 {
		segs = []SegmentInfo{{Index: 0, Path: l.base}}
		counts = []int{0}
	}
	l.activeRecords = counts[len(counts)-1]

	for i := range segs {
		stats.TotalBytes += segs[i].Size
		if segs[i].Checkpoint {
			stats.LastCheckpointSegment = segs[i].Index
		}
	}
	stats.Segments = len(segs)

	active := segs[len(segs)-1]
	f, err := os.OpenFile(active.Path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return stats, fmt.Errorf("wal: open active segment %s: %w", active.Path, err)
	}
	if _, err := f.Seek(active.Size, io.SeekStart); err != nil {
		f.Close()
		return stats, fmt.Errorf("wal: seek %s: %w", active.Path, err)
	}
	l.f = f
	l.w = bufio.NewWriter(f)
	l.segs = segs
	l.totalBytes = stats.TotalBytes
	return stats, nil
}

// firstFrameValid reports whether the file at path starts with one
// complete valid frame — the test that separates a durable checkpoint
// from the debris of one that never committed.
func firstFrameValid(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return false
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return false
	}
	var header [frameHeaderLen]byte
	var buf []byte
	_, _, ok, err := readFrame(bufio.NewReader(f), size, header[:], &buf)
	return err == nil && ok
}

// segPath names segment idx.
func (l *DirLog) segPath(idx int, checkpoint bool) string {
	if idx == 0 {
		return l.base
	}
	if checkpoint {
		return fmt.Sprintf("%s-%06d.ckpt.wal", l.stem, idx)
	}
	return fmt.Sprintf("%s-%06d.wal", l.stem, idx)
}

// Append writes one record under the configured fsync policy: in
// group-commit mode durability always waits for Commit; otherwise the
// record syncs inline once SyncEvery appends accumulate.
func (l *DirLog) Append(payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appendLocked(payload, false)
}

// AppendDeferred writes one record without any inline fsync, whatever
// the policy; the caller makes it durable with Commit (or Sync). It is
// the multi-record atomic-batch primitive: append the group deferred,
// then Commit once.
func (l *DirLog) AppendDeferred(payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appendLocked(payload, true)
}

func (l *DirLog) appendLocked(payload []byte, deferred bool) error {
	if l.closed {
		return ErrClosed
	}
	if len(payload) > MaxRecordLen {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, len(payload))
	}
	frameLen := int64(frameHeaderLen + len(payload) + 1)
	if l.shouldRotateLocked(frameLen) {
		if err := l.rotateLocked(false); err != nil {
			return err
		}
	}
	if err := writeFrame(l.w, l.scratch[:], payload); err != nil {
		l.setErrLocked(err)
		return err
	}
	l.records++
	l.unsynced++
	l.activeRecords++
	l.segs[len(l.segs)-1].Size += frameLen
	l.totalBytes += frameLen
	if !deferred && !l.opts.GroupCommit && l.unsynced >= l.opts.SyncEvery {
		return l.syncNowLocked()
	}
	return nil
}

// writeFrame writes one frame through w using scratch for the header.
func writeFrame(w *bufio.Writer, scratch, payload []byte) error {
	binary.LittleEndian.PutUint32(scratch[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(scratch[4:8], crc32.Checksum(payload, castagnoli))
	if _, err := w.Write(scratch[:frameHeaderLen]); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	if err := w.WriteByte('\n'); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	return nil
}

// shouldRotateLocked reports whether the next frame of frameLen bytes
// should open a fresh segment. A segment never rotates empty, so a
// record larger than SegmentBytes still lands somewhere.
func (l *DirLog) shouldRotateLocked(frameLen int64) bool {
	active := &l.segs[len(l.segs)-1]
	if active.Size == 0 {
		return false
	}
	if n := l.opts.SegmentRecords; n > 0 && l.segRecordsLocked() >= n {
		return true
	}
	if b := l.opts.SegmentBytes; b > 0 && active.Size+frameLen > b {
		return true
	}
	return false
}

// segRecordsLocked counts the records in the active segment. Tracked
// lazily: only needed when SegmentRecords rotation is configured.
func (l *DirLog) segRecordsLocked() int {
	return l.activeRecords
}

// Rotate closes the active segment (flushing and fsyncing it) and opens
// a fresh one; checkpoint flags the new segment as a checkpoint holder,
// whose first record the caller must make the checkpoint itself.
func (l *DirLog) Rotate(checkpoint bool) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.rotateLocked(checkpoint)
}

func (l *DirLog) rotateLocked(checkpoint bool) error {
	// A completed segment is immutable and durable: flush and fsync
	// before switching, even in group-commit mode (waiting committers
	// are covered by this sync and return immediately).
	if err := l.syncNowLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		l.setErrLocked(err)
		return fmt.Errorf("wal: rotate: %w", err)
	}
	idx := l.segs[len(l.segs)-1].Index + 1
	path := l.segPath(idx, checkpoint)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		l.setErrLocked(err)
		return fmt.Errorf("wal: rotate: %w", err)
	}
	l.f = f
	l.w.Reset(f)
	l.segs = append(l.segs, SegmentInfo{Index: idx, Checkpoint: checkpoint, Path: path})
	l.activeRecords = 0
	l.syncDirLocked()
	if l.opts.OnRotate != nil {
		l.opts.OnRotate(idx, checkpoint)
	}
	return nil
}

// Prune deletes every segment older than the newest checkpoint segment
// — history the checkpoint's snapshot fully covers. Call it only after
// the checkpoint record is durable (Commit/Sync returned). Returns the
// number of segments removed.
func (l *DirLog) Prune() (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	cut := -1
	for i := len(l.segs) - 1; i >= 0; i-- {
		if l.segs[i].Checkpoint {
			cut = i
			break
		}
	}
	if cut <= 0 {
		return 0, nil
	}
	for i := 0; i < cut; i++ {
		if err := os.Remove(l.segs[i].Path); err != nil {
			return i, fmt.Errorf("wal: prune: %w", err)
		}
		l.totalBytes -= l.segs[i].Size
	}
	l.segs = append(l.segs[:0], l.segs[cut:]...)
	l.syncDirLocked()
	return cut, nil
}

// Commit makes every record appended so far durable. In group-commit
// mode it joins the syncer's next batch and blocks until an fsync
// covers the caller's appends; otherwise it is an inline flush+fsync
// (a no-op when nothing is unsynced).
func (l *DirLog) Commit() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if !l.opts.GroupCommit {
		if l.unsynced > 0 {
			return l.syncNowLocked()
		}
		return l.syncErr
	}
	target := l.records
	for l.synced < target {
		if l.syncErr != nil {
			return l.syncErr
		}
		if l.closed {
			return ErrClosed
		}
		l.pendingSync = true
		l.syncCond.Signal()
		l.waitCond.Wait()
	}
	return l.syncErr
}

// Sync flushes and fsyncs inline, whatever the mode.
func (l *DirLog) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.syncNowLocked()
}

// syncNowLocked flushes the buffer and fsyncs under the lock, first
// waiting out any in-flight group fsync so the two never interleave on
// the file descriptor.
func (l *DirLog) syncNowLocked() error {
	for l.syncing {
		l.waitCond.Wait()
	}
	if l.closed {
		return ErrClosed
	}
	if err := l.w.Flush(); err != nil {
		l.setErrLocked(err)
		return fmt.Errorf("wal: flush: %w", err)
	}
	if !l.opts.NoSync {
		if err := l.f.Sync(); err != nil {
			l.setErrLocked(err)
			return fmt.Errorf("wal: fsync: %w", err)
		}
	}
	l.syncs++
	l.synced = l.records
	l.unsynced = 0
	l.waitCond.Broadcast()
	return nil
}

// syncLoop is the group-commit syncer: it owns fsync, coalescing every
// Commit caller that arrives before (or during) a sync into one batch.
func (l *DirLog) syncLoop() {
	defer close(l.syncerDone)
	l.mu.Lock()
	for {
		for !l.pendingSync && !l.closed {
			l.syncCond.Wait()
		}
		if l.closed {
			l.mu.Unlock()
			return
		}
		l.pendingSync = false
		if iv := l.opts.SyncInterval; iv > 0 {
			// The coalescing window: let more committers join the batch.
			l.mu.Unlock()
			time.Sleep(iv)
			l.mu.Lock()
			if l.closed {
				l.mu.Unlock()
				return
			}
			l.pendingSync = false
		}
		start := time.Now()
		if err := l.w.Flush(); err != nil {
			l.setErrLocked(err)
			l.waitCond.Broadcast()
			continue
		}
		target := l.records
		f := l.f
		l.syncing = true
		l.mu.Unlock()

		var err error
		if !l.opts.NoSync {
			err = f.Sync()
		}
		dur := time.Since(start)

		l.mu.Lock()
		l.syncing = false
		l.syncs++
		batch := int(target - l.synced)
		if err != nil {
			l.setErrLocked(err)
		} else if target > l.synced {
			l.synced = target
		}
		l.waitCond.Broadcast()
		if cb := l.opts.OnGroupCommit; cb != nil && err == nil && batch > 0 {
			l.mu.Unlock()
			cb(batch, dur)
			l.mu.Lock()
		}
	}
}

func (l *DirLog) setErrLocked(err error) {
	if l.syncErr == nil {
		l.syncErr = err
	}
}

// syncDirLocked fsyncs the directory so segment creation and removal
// survive power loss, not just process death. Best effort: a filesystem
// that cannot fsync a directory degrades to the process-death model.
func (l *DirLog) syncDirLocked() {
	if l.opts.NoSync {
		return
	}
	if d, err := os.Open(l.dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// Close makes everything durable and stops the log. Idempotent.
func (l *DirLog) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		if l.syncerDone != nil {
			<-l.syncerDone
		}
		return nil
	}
	err := l.syncNowLocked()
	l.closed = true
	if l.syncCond != nil {
		l.syncCond.Broadcast()
	}
	l.waitCond.Broadcast()
	f := l.f
	l.mu.Unlock()
	if l.syncerDone != nil {
		<-l.syncerDone
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Abort closes the file descriptor without flushing the write buffer —
// the crash-simulation primitive (see Log.Abort): whatever the last
// fsync covered stays, buffered records are gone.
func (l *DirLog) Abort() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		if l.syncerDone != nil {
			<-l.syncerDone
		}
		return nil
	}
	l.closed = true
	if l.syncCond != nil {
		l.syncCond.Broadcast()
	}
	l.waitCond.Broadcast()
	f := l.f
	l.mu.Unlock()
	f.Close() // races any in-flight group fsync, which then just errors
	if l.syncerDone != nil {
		<-l.syncerDone
	}
	return nil
}

// Stats returns the directory's current extent: the open-time recovery
// stats updated with appends, rotations and prunes since.
func (l *DirLog) Stats() DirStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := l.openStats
	st.Records += int(l.records)
	st.Segments = len(l.segs)
	st.TotalBytes = l.totalBytes
	st.Syncs = l.syncs
	st.LastCheckpointSegment = -1
	for i := len(l.segs) - 1; i >= 0; i-- {
		if l.segs[i].Checkpoint {
			st.LastCheckpointSegment = l.segs[i].Index
			break
		}
	}
	return st
}
