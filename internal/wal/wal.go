// Package wal is the durability layer of the market daemon: a
// single-writer append-only event log with checksummed, length-prefixed
// JSON records, fsync batching, and deterministic torn-tail recovery.
//
// The market's whole crash story reduces to one invariant: a record that
// Append has synced is never lost, and a record the log did not finish
// writing is never half-applied. The frame format makes both checkable
// byte-by-byte:
//
//	[4B little-endian payload length][4B CRC32-C of payload][payload]['\n']
//
// The payload is one JSON document (the file is valid "length-prefixed
// JSONL": strip the 8-byte headers and it reads as a line-per-record
// text log). The trailing newline is part of the frame — a frame whose
// terminator is missing is torn by definition.
//
// Recovery (Open) scans frames from the start and stops at the first
// invalid one: a header that runs past EOF, a payload shorter than its
// length prefix, a CRC mismatch, or a missing terminator. Everything
// before the invalid frame is intact (single writer, append only), so
// everything from it onward is the debris of the write that was in
// flight when the process died; Open truncates the file back to the last
// valid frame boundary and reports the dropped bytes in RecoverStats.
// The scan is deterministic: the same file bytes always recover to the
// same record sequence, which is what lets the market replay
// bit-identically.
//
// Durability is batched: Append writes through a buffer and fsyncs every
// SyncEvery records (Sync forces an immediate flush+fsync). A crash can
// therefore lose up to SyncEvery-1 tail records — callers that
// acknowledge writes externally (the market acks a bid submission over
// HTTP) must Sync before acking, or run with SyncEvery=1.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// frameHeaderLen is the fixed per-record overhead before the payload:
// 4 bytes of little-endian payload length plus 4 bytes of CRC32-C.
const frameHeaderLen = 8

// MaxRecordLen bounds a single record's payload. The limit exists so a
// corrupt length prefix cannot make recovery attempt a multi-gigabyte
// allocation; 16 MiB is orders of magnitude above any market record.
const MaxRecordLen = 16 << 20

// castagnoli is the CRC32-C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by operations on a closed (or aborted) log.
var ErrClosed = errors.New("wal: log closed")

// ErrTooLarge is returned by Append for payloads over MaxRecordLen.
var ErrTooLarge = errors.New("wal: record exceeds MaxRecordLen")

// RecoverStats reports what Open found in an existing log file.
type RecoverStats struct {
	// Records is the number of valid records recovered.
	Records int
	// ValidBytes is the file offset of the last valid frame boundary.
	ValidBytes int64
	// DroppedBytes is the length of the torn/corrupt tail that Open
	// truncated away (zero for a clean log).
	DroppedBytes int64
}

// Options configures a log.
type Options struct {
	// SyncEvery fsyncs the file after every n-th Append. 1 (or 0, the
	// default) syncs every record — the safe setting; larger values batch
	// records between fsyncs and trade a bounded window of unacknowledged
	// tail loss for throughput.
	SyncEvery int
	// NoSync disables fsync entirely (tests only: CI filesystems make
	// per-record fsync the dominant cost of a 200-auction differential
	// run). Crash durability is then whatever the OS page cache provides.
	NoSync bool
}

// Log is a single-writer append-only record log. Append/Sync/Close are
// safe for use from one goroutine at a time (the market serializes
// appends under its own lock); Open performs recovery eagerly so a
// freshly opened log is always positioned at a valid frame boundary.
type Log struct {
	f        *os.File
	w        *bufio.Writer
	opts     Options
	stats    RecoverStats
	unsynced int
	closed   bool
	scratch  [frameHeaderLen]byte
}

// Open opens (creating if absent) the log at path, scans and validates
// every frame, truncates any torn or corrupt tail, and positions the
// log for appending. fn, when non-nil, is called once per recovered
// payload in append order; an error from fn aborts the open. The
// returned stats describe what the scan found.
func Open(path string, opts Options, fn func(payload []byte) error) (*Log, RecoverStats, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, RecoverStats{}, fmt.Errorf("wal: open %s: %w", path, err)
	}
	stats, err := scan(f, fn)
	if err != nil {
		f.Close()
		return nil, stats, err
	}
	if stats.DroppedBytes > 0 {
		if err := f.Truncate(stats.ValidBytes); err != nil {
			f.Close()
			return nil, stats, fmt.Errorf("wal: truncate torn tail of %s: %w", path, err)
		}
	}
	if _, err := f.Seek(stats.ValidBytes, io.SeekStart); err != nil {
		f.Close()
		return nil, stats, fmt.Errorf("wal: seek %s: %w", path, err)
	}
	l := &Log{f: f, w: bufio.NewWriter(f), opts: opts, stats: stats}
	if l.opts.SyncEvery <= 0 {
		l.opts.SyncEvery = 1
	}
	return l, stats, nil
}

// scan validates frames from the start of f and reports the last valid
// boundary. It never fails on corrupt data — corruption just ends the
// valid prefix — only on I/O errors or a callback error.
func scan(f *os.File, fn func([]byte) error) (RecoverStats, error) {
	var stats RecoverStats
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return stats, fmt.Errorf("wal: size: %w", err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return stats, fmt.Errorf("wal: rewind: %w", err)
	}
	r := bufio.NewReader(f)
	var (
		off    int64
		header [frameHeaderLen]byte
		buf    []byte
	)
	for {
		rec, n, ok, err := readFrame(r, size-off, header[:], &buf)
		if err != nil {
			return stats, err
		}
		if !ok {
			break
		}
		if fn != nil {
			if err := fn(rec); err != nil {
				return stats, err
			}
		}
		off += n
		stats.Records++
	}
	stats.ValidBytes = off
	stats.DroppedBytes = size - off
	return stats, nil
}

// readFrame reads one frame. remaining bounds the bytes left in the
// file, so a torn header or payload is detected without relying on
// io.EOF semantics. ok=false (with nil error) means "no further valid
// frame": clean EOF or a torn/corrupt tail — the caller cannot and need
// not distinguish, recovery treats both as the end of the log.
func readFrame(r *bufio.Reader, remaining int64, header []byte, buf *[]byte) (payload []byte, frameLen int64, ok bool, err error) {
	if remaining < frameHeaderLen {
		return nil, 0, false, nil // clean EOF or torn header
	}
	if _, err := io.ReadFull(r, header); err != nil {
		return nil, 0, false, fmt.Errorf("wal: read header: %w", err)
	}
	n := binary.LittleEndian.Uint32(header[:4])
	sum := binary.LittleEndian.Uint32(header[4:8])
	if n > MaxRecordLen || int64(n)+1 > remaining-frameHeaderLen {
		return nil, 0, false, nil // absurd length or payload torn at EOF
	}
	if cap(*buf) < int(n)+1 {
		*buf = make([]byte, n+1)
	}
	b := (*buf)[:n+1]
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, 0, false, fmt.Errorf("wal: read payload: %w", err)
	}
	if b[n] != '\n' {
		return nil, 0, false, nil // missing terminator: torn frame
	}
	if crc32.Checksum(b[:n], castagnoli) != sum {
		return nil, 0, false, nil // corrupt payload
	}
	return b[:n], frameHeaderLen + int64(n) + 1, true, nil
}

// Append writes one record. The payload is copied into the frame
// immediately; the caller may reuse it. Durability follows the fsync
// policy: the record is on disk once the SyncEvery batch it belongs to
// has synced (or after an explicit Sync).
func (l *Log) Append(payload []byte) error {
	if l.closed {
		return ErrClosed
	}
	if len(payload) > MaxRecordLen {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, len(payload))
	}
	binary.LittleEndian.PutUint32(l.scratch[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(l.scratch[4:8], crc32.Checksum(payload, castagnoli))
	if _, err := l.w.Write(l.scratch[:]); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	if _, err := l.w.Write(payload); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	if err := l.w.WriteByte('\n'); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	l.stats.Records++
	l.stats.ValidBytes += frameHeaderLen + int64(len(payload)) + 1
	l.unsynced++
	if l.unsynced >= l.opts.SyncEvery {
		return l.Sync()
	}
	return nil
}

// Sync flushes buffered frames to the OS and fsyncs the file, making
// every appended record durable.
func (l *Log) Sync() error {
	if l.closed {
		return ErrClosed
	}
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("wal: flush: %w", err)
	}
	if !l.opts.NoSync {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: fsync: %w", err)
		}
	}
	l.unsynced = 0
	return nil
}

// Close syncs and closes the log. Idempotent.
func (l *Log) Close() error {
	if l.closed {
		return nil
	}
	err := l.Sync()
	l.closed = true
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Abort closes the file descriptor without flushing the write buffer —
// the crash-simulation path: records still sitting in the buffer are
// lost exactly as they would be if the process had been killed. Tests
// use it to exercise the unsynced-tail recovery; production code should
// always Close.
func (l *Log) Abort() error {
	if l.closed {
		return nil
	}
	l.closed = true
	return l.f.Close()
}

// Stats returns the log's current extent: recovered records plus
// appends so far, and the valid byte length.
func (l *Log) Stats() RecoverStats { return l.stats }

// DecodeFrame parses a single frame from b, returning the payload and
// the total frame length. ok is false when b does not start with a
// complete valid frame. It is the pure-function core of the recovery
// scan, exported for the fuzzer.
func DecodeFrame(b []byte) (payload []byte, frameLen int, ok bool) {
	if len(b) < frameHeaderLen {
		return nil, 0, false
	}
	n := binary.LittleEndian.Uint32(b[:4])
	sum := binary.LittleEndian.Uint32(b[4:8])
	if n > MaxRecordLen {
		return nil, 0, false
	}
	end := frameHeaderLen + int(n)
	if end+1 > len(b) {
		return nil, 0, false
	}
	if b[end] != '\n' {
		return nil, 0, false
	}
	p := b[frameHeaderLen:end]
	if crc32.Checksum(p, castagnoli) != sum {
		return nil, 0, false
	}
	return p, end + 1, true
}

// EncodeFrame appends the frame encoding of payload to dst and returns
// the extended slice. Inverse of DecodeFrame; exported for the fuzzer
// and for tests that craft WAL files byte-by-byte.
func EncodeFrame(dst, payload []byte) []byte {
	var header [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(header[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(header[4:8], crc32.Checksum(payload, castagnoli))
	dst = append(dst, header[:]...)
	dst = append(dst, payload...)
	return append(dst, '\n')
}
