// Package obs is the observability layer of the auction stack: a
// structured phase-trace event stream plus allocation-light metric
// primitives (counters, gauges, fixed-bucket latency histograms) with a
// text/expvar-style exposition snapshot.
//
// The package is a dependency leaf — it imports nothing from the rest of
// the module — so every layer (core solver, networked platform, chaos
// harness, commands) can emit into it without cycles. Instrumented code
// holds an Observer that is nil by default; every hook point is guarded
// by a nil check, so the un-instrumented hot path costs one predictable
// branch and zero allocations (locked in by the facade's alloc-guard
// test against BENCH_core.json).
//
// Two Observer implementations ship with the package:
//
//   - Trace records the raw event sequence — deterministic over a fixed
//     workload when given a deterministic time source — for golden tests
//     and postmortems;
//   - Metrics folds events into a Registry of counters, gauges and
//     latency histograms for serving dashboards; counter values are
//     order-independent, so they stay deterministic even when events
//     arrive from concurrent workers.
package obs

import "time"

// EventKind enumerates the phase-trace hook points of the auction stack.
type EventKind uint8

const (
	// EvAuctionStarted opens a T̂_g sweep. Tg carries the horizon T,
	// Round the sweep start T_0, Value the bid-population size.
	EvAuctionStarted EventKind = iota
	// EvWDPSolved closes one fixed-T̂_g winner-determination solve.
	// Tg is the candidate T̂_g, OK its feasibility, Value its social
	// cost, Dur the solve latency.
	EvWDPSolved
	// EvWinnerAccepted reports one accepted bid of the winning WDP.
	// Client/Bid identify the bid, Value is its claimed price.
	EvWinnerAccepted
	// EvPaymentComputed reports one winner's remuneration. Value is the
	// payment p_i.
	EvPaymentComputed
	// EvAuctionDone closes the sweep. OK is overall feasibility, Tg the
	// chosen T_g*, Value the minimum social cost, Dur the sweep latency.
	EvAuctionDone
	// EvRepairTriggered opens a mid-session coverage repair. Tg is the
	// committed horizon, Round the first repairable iteration, Value the
	// number of under-covered iterations.
	EvRepairTriggered
	// EvRepairDone closes a repair. OK reports whether coverage was
	// restored, Value the total replacement cost, Dur the solve latency.
	EvRepairDone
	// EvRetryFired marks one re-delivery of a round request to an
	// unresponsive winner. Round is the iteration, Client the winner.
	EvRetryFired
	// EvStragglerDetected marks a client that answered only after at
	// least one retry. Value is the number of delivery attempts consumed.
	EvStragglerDetected
	// EvDropDetected marks a winner that exhausted all delivery attempts
	// and is declared dropped.
	EvDropDetected
	// EvRoundDone closes one training round. Round is the iteration, OK
	// is false when the round ran under-covered, Value the number of
	// aggregated updates.
	EvRoundDone
	// EvFaultInjected marks one injected network fault. Label is the
	// fault kind ("drop", "delay", "dup", "crash"), Client the affected
	// link, Value the injected delay in seconds (delay faults only).
	EvFaultInjected
	// EvPricingStarted opens the lazy exact-critical payment stage, which
	// runs once, on the winner set of the selected T̂_g (or a repair's
	// residual market). Tg is the priced T̂_g, Round the pricing worker
	// count, Value the number of winners to price.
	EvPricingStarted
	// EvWinnerPriced reports one winner's exact-critical payment.
	// Client/Bid identify the bid, Value is the payment, Round the number
	// of bisection probes (full allocation re-solves) consumed, Dur the
	// per-winner pricing latency.
	EvWinnerPriced
	// EvPricingDone closes the payment stage. Value is the total payment
	// of the priced winner set, OK is false when pricing was abandoned by
	// context cancellation, Dur the stage latency.
	EvPricingDone
	// EvBatchStarted opens a cross-auction batch (RunBatch) or a batch
	// service lifetime (Service). Value is the number of submitted
	// instances (zero for a service, which learns its load later), Round
	// the scheduler's worker count.
	EvBatchStarted
	// EvAuctionQueued marks one auction instance entering the submission
	// queue. Bid carries the instance index, Value the queue depth after
	// the enqueue.
	EvAuctionQueued
	// EvAuctionDequeued marks a worker picking an instance up for
	// solving. Bid carries the instance index, Value the queue depth
	// after the removal. The instance's own phase events
	// (auction_started … auction_done) follow between this event and the
	// next dequeue by the same worker.
	EvAuctionDequeued
	// EvBatchDone closes a batch or service. Value is the number of
	// instances that produced an outcome, OK is false when the batch was
	// abandoned by context cancellation, Dur the batch latency.
	EvBatchDone
	// EvMarketRecovered closes a durable market's WAL replay on startup.
	// Value is the number of committed outcomes restored, Round the
	// number of pending (logged-but-unsolved) submissions re-submitted,
	// Dur the replay latency, OK true when the log was clean (no torn
	// tail, no duplicate records).
	EvMarketRecovered
	// EvWALFault marks one anomaly absorbed during WAL replay. Label is
	// the fault class ("torn_tail", "dup_record", "orphan_payment");
	// Value is the dropped byte count for torn tails, otherwise the
	// affected sequence number.
	EvWALFault
	// EvRateLimited marks one submission rejected by the per-client
	// token bucket at the HTTP edge. Label is the client key, Value the
	// advised retry delay in seconds.
	EvRateLimited
	// EvAdmissionRejected marks one submission turned away by queue-depth
	// admission control. Value is the pending depth at rejection.
	EvAdmissionRejected
	// EvCertificateComputed closes an approximate sweep's certificate
	// assembly. Label is the solver tier ("coarse-fine", "lp-round"),
	// Tg the selected T̂_g, Round the number of candidates actually
	// solved, Value the certified approximation ratio, OK feasibility.
	EvCertificateComputed
	// EvWALCheckpoint closes one durable-market checkpoint: a rotation
	// into a checkpoint-flagged segment, the snapshot record append, and
	// the prune of covered history. Value is the next sequence number
	// captured by the snapshot, Round the number of segments pruned, Dur
	// the checkpoint latency, OK false when the snapshot write failed.
	EvWALCheckpoint
	// EvWALSegmentRotated marks the WAL sealing its active segment and
	// opening a new one. Value is the new segment index, OK true when the
	// new segment starts with a checkpoint record.
	EvWALSegmentRotated
	// EvGroupCommit closes one coalesced fsync of the group-commit
	// syncer. Value is the number of records made durable by the single
	// fsync (the batch size), Dur the fsync latency.
	EvGroupCommit

	numEventKinds = int(EvGroupCommit) + 1
)

var eventKindNames = [numEventKinds]string{
	EvAuctionStarted:      "auction_started",
	EvWDPSolved:           "wdp_solved",
	EvWinnerAccepted:      "winner_accepted",
	EvPaymentComputed:     "payment_computed",
	EvAuctionDone:         "auction_done",
	EvRepairTriggered:     "repair_triggered",
	EvRepairDone:          "repair_done",
	EvRetryFired:          "retry_fired",
	EvStragglerDetected:   "straggler_detected",
	EvDropDetected:        "drop_detected",
	EvRoundDone:           "round_done",
	EvFaultInjected:       "fault_injected",
	EvPricingStarted:      "pricing_started",
	EvWinnerPriced:        "winner_priced",
	EvPricingDone:         "pricing_done",
	EvBatchStarted:        "batch_started",
	EvAuctionQueued:       "auction_queued",
	EvAuctionDequeued:     "auction_dequeued",
	EvBatchDone:           "batch_done",
	EvMarketRecovered:     "market_recovered",
	EvWALFault:            "wal_fault",
	EvRateLimited:         "rate_limited",
	EvAdmissionRejected:   "admission_rejected",
	EvCertificateComputed: "certificate_computed",
	EvWALCheckpoint:       "wal_checkpoint",
	EvWALSegmentRotated:   "wal_segment_rotated",
	EvGroupCommit:         "group_commit",
}

// String returns the kind's snake_case name.
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return "unknown"
}

// Event is one structured phase-trace record. It is a flat value — no
// pointers, no per-event allocation — so emitting one costs a stack copy
// and whatever the Observer does with it. Field meaning depends on Kind
// (see the EventKind constants); unused fields are zero.
type Event struct {
	// Kind identifies the hook point.
	Kind EventKind
	// Tg is the number of global iterations in play.
	Tg int
	// Round is a global-iteration index (1-based), or the sweep start.
	Round int
	// Client is a client ID, -1 when not applicable.
	Client int
	// Bid is a bid index into the auction's bid slice, -1 when not
	// applicable.
	Bid int
	// Value is the kind-specific magnitude (cost, payment, count, ...).
	Value float64
	// OK is the kind-specific success flag (feasible, repaired, covered).
	OK bool
	// Dur is the phase latency, zero when the emitter had no time source.
	Dur time.Duration
	// Label is a kind-specific discriminator (e.g. the fault kind).
	Label string
}

// Observer receives phase-trace events. Implementations must be safe for
// concurrent use: the concurrent sweep and the networked platform emit
// from multiple goroutines. Observe must not retain the event past the
// call (it is a value, so plain stores are fine) and should return
// quickly — it runs inline on the instrumented path.
type Observer interface {
	Observe(Event)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(Event)

// Observe implements Observer.
func (f ObserverFunc) Observe(e Event) { f(e) }

// multi fans one event out to several observers in order.
type multi []Observer

func (m multi) Observe(e Event) {
	for _, o := range m {
		o.Observe(e)
	}
}

// Multi returns an Observer that forwards every event to each non-nil
// observer in order. Nil entries are dropped; zero or one live entries
// collapse to nil or the entry itself.
func Multi(obs ...Observer) Observer {
	live := make(multi, 0, len(obs))
	for _, o := range obs {
		if o != nil {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}
