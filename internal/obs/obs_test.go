package obs

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeConcurrent(t *testing.T) {
	var c Counter
	var g Gauge
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(0.5)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got, want := g.Value(), float64(workers*per)*0.5; got != want {
		t.Fatalf("gauge = %g, want %g", got, want)
	}
	g.Set(-3)
	if got := g.Value(); got != -3 {
		t.Fatalf("gauge after Set = %g, want -3", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got, want := h.Sum(), 0.05+0.1+0.5+2+100; got != want {
		t.Fatalf("sum = %g, want %g", got, want)
	}
	// Cumulative: ≤0.1 holds 0.05 and 0.1; ≤1 adds 0.5; ≤10 adds 2;
	// +Inf adds 100.
	want := []int64{2, 3, 4, 5}
	got := h.Buckets()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("buckets = %v, want %v", got, want)
		}
	}
	h.ObserveDuration(500 * time.Millisecond)
	if got := h.Buckets()[1]; got != 4 {
		t.Fatalf("bucket ≤1 after 0.5s duration = %d, want 4", got)
	}
}

func TestHistogramRejectsUnsortedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unsorted bounds")
		}
	}()
	NewHistogram([]float64{1, 1})
}

func TestRegistrySnapshotDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(2)
	r.Counter("a_total").Inc()
	r.Gauge("volume").Set(1.5)
	h := r.Histogram("lat_seconds", []float64{0.5, 1})
	h.Observe(0.2)
	h.Observe(3)
	got := r.String()
	want := strings.Join([]string{
		"a_total 1",
		"b_total 2",
		`lat_seconds_count 2`,
		`lat_seconds_sum 3.2`,
		`lat_seconds_bucket{le="0.5"} 1`,
		`lat_seconds_bucket{le="1"} 1`,
		`lat_seconds_bucket{le="+Inf"} 2`,
		"volume 1.5",
	}, "\n") + "\n"
	if got != want {
		t.Fatalf("snapshot mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	// Get-or-create returns the same instances.
	if r.Counter("a_total").Value() != 1 {
		t.Fatal("Counter did not return the existing instance")
	}
	if r.Histogram("lat_seconds", nil).Count() != 2 {
		t.Fatal("Histogram did not return the existing instance")
	}
}

func TestMetricsObserver(t *testing.T) {
	m := NewMetrics(nil)
	events := []Event{
		{Kind: EvAuctionStarted, Tg: 10, Client: -1, Bid: -1},
		{Kind: EvWDPSolved, Tg: 3, OK: false, Client: -1, Bid: -1, Dur: time.Millisecond},
		{Kind: EvWDPSolved, Tg: 4, OK: true, Value: 12, Client: -1, Bid: -1, Dur: 2 * time.Millisecond},
		{Kind: EvWinnerAccepted, Client: 1, Bid: 5, Value: 7},
		{Kind: EvPaymentComputed, Client: 1, Bid: 5, Value: 9},
		{Kind: EvAuctionDone, OK: true, Tg: 4, Value: 12, Client: -1, Bid: -1, Dur: 3 * time.Millisecond},
		{Kind: EvRepairTriggered, Round: 2, Client: -1, Bid: -1},
		{Kind: EvRepairDone, OK: false, Client: -1, Bid: -1},
		{Kind: EvRetryFired, Round: 2, Client: 3, Bid: -1},
		{Kind: EvStragglerDetected, Round: 2, Client: 3, Bid: -1, Value: 2},
		{Kind: EvDropDetected, Round: 3, Client: 4, Bid: -1},
		{Kind: EvRoundDone, Round: 2, OK: false, Client: -1, Bid: -1},
		{Kind: EvFaultInjected, Client: 3, Bid: -1, Label: "drop"},
		{Kind: EvFaultInjected, Client: 3, Bid: -1, Label: "delay", Value: 0.25},
	}
	for _, e := range events {
		m.Observe(e)
	}
	reg := m.Registry()
	checks := map[string]int64{
		"afl_auctions_total":             1,
		"afl_auctions_infeasible_total":  0,
		"afl_wdp_solves_total":           2,
		"afl_wdp_infeasible_total":       1,
		"afl_winners_total":              1,
		"afl_repairs_total":              1,
		"afl_repairs_failed_total":       1,
		"afl_retries_total":              1,
		"afl_stragglers_total":           1,
		"afl_dropouts_total":             1,
		"afl_rounds_total":               1,
		"afl_rounds_under_covered_total": 1,
		"afl_faults_drop_total":          1,
		"afl_faults_delay_total":         1,
		"afl_faults_dup_total":           0,
	}
	for name, want := range checks {
		if got := reg.Counter(name).Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got := reg.Gauge("afl_payment_volume").Value(); got != 9 {
		t.Errorf("payment volume = %g, want 9", got)
	}
	if got := reg.Histogram("afl_wdp_solve_seconds", nil).Count(); got != 2 {
		t.Errorf("wdp solve observations = %d, want 2", got)
	}
}

func TestTraceAndFormat(t *testing.T) {
	var tr Trace
	tr.Observe(Event{Kind: EvAuctionStarted, Tg: 8, Round: 2, Client: -1, Bid: -1, Value: 5})
	tr.Observe(Event{Kind: EvWinnerAccepted, Tg: 4, Client: 0, Bid: 3, Value: 2.5, OK: true})
	tr.Observe(Event{Kind: EvFaultInjected, Client: 1, Bid: -1, Label: "dup"})
	want := "auction_started tg=8 round=2 value=5 ok=false\n" +
		"winner_accepted tg=4 client=0 bid=3 value=2.5 ok=true\n" +
		"fault_injected client=1 ok=false label=dup\n"
	if got := tr.String(); got != want {
		t.Fatalf("trace mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if tr.Len() != 3 || len(tr.Events()) != 3 {
		t.Fatalf("len = %d, want 3", tr.Len())
	}
	tr.Reset()
	if tr.Len() != 0 {
		t.Fatal("reset did not clear events")
	}
}

func TestMultiObserver(t *testing.T) {
	var a, b Trace
	if Multi(nil, nil) != nil {
		t.Fatal("Multi of nils should be nil")
	}
	if Multi(&a) != &a {
		t.Fatal("Multi of one should collapse to it")
	}
	m := Multi(&a, nil, &b)
	m.Observe(Event{Kind: EvRoundDone, Client: -1, Bid: -1})
	if a.Len() != 1 || b.Len() != 1 {
		t.Fatalf("fan-out failed: a=%d b=%d", a.Len(), b.Len())
	}
	var n int
	ObserverFunc(func(Event) { n++ }).Observe(Event{})
	if n != 1 {
		t.Fatal("ObserverFunc did not fire")
	}
}

func TestStartProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	stop, err := StartProfiles(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to hold.
	x := 0
	for i := 0; i < 1e6; i++ {
		x += i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s: %v", p, err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
	// Both paths empty: stop must be a no-op.
	stop, err = StartProfiles("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

// TestWALDurabilityEvents pins the names, trace rendering and metric
// folds of the segment/checkpoint/group-commit events.
func TestWALDurabilityEvents(t *testing.T) {
	var tr Trace
	m := NewMetrics(nil)
	o := Multi(&tr, m)
	events := []Event{
		{Kind: EvWALSegmentRotated, Client: -1, Bid: -1, Value: 3, OK: true},
		{Kind: EvWALSegmentRotated, Client: -1, Bid: -1, Value: 4},
		{Kind: EvWALCheckpoint, Client: -1, Bid: -1, Value: 120, Round: 2, OK: true, Dur: 4 * time.Millisecond},
		{Kind: EvWALCheckpoint, Client: -1, Bid: -1, Value: 121, OK: false},
		{Kind: EvGroupCommit, Client: -1, Bid: -1, Value: 7, Dur: 2 * time.Millisecond},
		{Kind: EvGroupCommit, Client: -1, Bid: -1, Value: 1, Dur: time.Millisecond},
	}
	for _, e := range events {
		o.Observe(e)
	}
	want := "wal_segment_rotated value=3 ok=true\n" +
		"wal_segment_rotated value=4 ok=false\n" +
		"wal_checkpoint round=2 value=120 ok=true dur=4ms\n" +
		"wal_checkpoint value=121 ok=false\n" +
		"group_commit value=7 ok=false dur=2ms\n" +
		"group_commit value=1 ok=false dur=1ms\n"
	if got := tr.String(); got != want {
		t.Fatalf("trace mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	reg := m.Registry()
	checks := map[string]int64{
		"afl_wal_rotations_total":          2,
		"afl_wal_checkpoints_total":        2,
		"afl_wal_checkpoints_failed_total": 1,
		"afl_wal_segments_pruned_total":    2,
		"afl_group_commits_total":          2,
		"afl_group_commit_records_total":   8,
	}
	for name, wantV := range checks {
		if got := reg.Counter(name).Value(); got != wantV {
			t.Errorf("%s = %d, want %d", name, got, wantV)
		}
	}
	h := reg.Histogram("afl_group_commit_batch", BatchBuckets)
	if h.Count() != 2 || h.Sum() != 8 {
		t.Errorf("batch histogram count=%d sum=%g, want 2/8", h.Count(), h.Sum())
	}
}
