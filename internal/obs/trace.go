package obs

import (
	"fmt"
	"strings"
	"sync"
)

// Trace is an Observer that records the raw event sequence. The zero
// value is ready to use; Observe is safe for concurrent use (arrival
// order across goroutines is whatever the scheduler produced — for a
// deterministic trace, emit from one goroutine, e.g. a sequential sweep).
type Trace struct {
	mu     sync.Mutex
	events []Event
}

// Observe implements Observer.
func (t *Trace) Observe(e Event) {
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Events returns a copy of the recorded events.
func (t *Trace) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// Len returns the number of recorded events.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Reset discards all recorded events.
func (t *Trace) Reset() {
	t.mu.Lock()
	t.events = t.events[:0]
	t.mu.Unlock()
}

// String renders one line per event. The format is stable and includes
// only the fields the event kind populates, so a trace taken with a
// deterministic time source golden-tests cleanly.
func (t *Trace) String() string {
	var sb strings.Builder
	for _, e := range t.Events() {
		sb.WriteString(FormatEvent(e))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// FormatEvent renders one event on one line: the kind followed by
// space-separated key=value pairs for every populated field, in a fixed
// order.
func FormatEvent(e Event) string {
	var sb strings.Builder
	sb.WriteString(e.Kind.String())
	if e.Tg != 0 {
		fmt.Fprintf(&sb, " tg=%d", e.Tg)
	}
	if e.Round != 0 {
		fmt.Fprintf(&sb, " round=%d", e.Round)
	}
	if e.Client >= 0 {
		fmt.Fprintf(&sb, " client=%d", e.Client)
	}
	if e.Bid >= 0 {
		fmt.Fprintf(&sb, " bid=%d", e.Bid)
	}
	if e.Value != 0 {
		fmt.Fprintf(&sb, " value=%g", e.Value)
	}
	fmt.Fprintf(&sb, " ok=%v", e.OK)
	if e.Dur != 0 {
		fmt.Fprintf(&sb, " dur=%s", e.Dur)
	}
	if e.Label != "" {
		fmt.Fprintf(&sb, " label=%s", e.Label)
	}
	return sb.String()
}
