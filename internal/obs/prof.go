package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles wires the standard Go profilers for a command run: when
// cpuPath is non-empty, CPU profiling starts immediately; the returned
// stop function ends it and, when memPath is non-empty, forces a GC and
// writes an allocs-space heap profile there. Either path may be empty;
// stop is always non-nil and idempotent-safe to defer.
//
// Commands pair this with the -cpuprofile/-memprofile flags so a slow
// sweep or a leaky session can be inspected with `go tool pprof`.
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("obs: create cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("obs: start cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("obs: close cpu profile: %w", err)
			}
			cpuFile = nil
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("obs: create mem profile: %w", err)
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date allocation statistics
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				return fmt.Errorf("obs: write mem profile: %w", err)
			}
		}
		return nil
	}, nil
}
