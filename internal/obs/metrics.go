package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing integer metric. The zero value is
// ready to use; all methods are safe for concurrent use and allocation
// free.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be ≥ 0 for the counter to stay monotone).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 metric that can move both ways (queue depths,
// payment volume, last-seen cost). The zero value is ready to use; all
// methods are safe for concurrent use and allocation free.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores x.
func (g *Gauge) Set(x float64) { g.bits.Store(math.Float64bits(x)) }

// Add atomically adds x via compare-and-swap.
func (g *Gauge) Add(x float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + x)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution metric. Buckets are defined by
// ascending upper bounds; an observation lands in the first bucket whose
// bound is ≥ the value, or in the implicit +Inf overflow bucket. Observe
// is a binary search plus two atomic adds — no allocation, no locking —
// which is what makes it safe on the solver's hot path.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	sum    Gauge
	count  atomic.Int64
}

// DefBuckets are the default latency bounds in seconds: 10µs to ~10s in
// half-decade steps, matching the spread between a single WDP solve and a
// full large-population sweep.
var DefBuckets = []float64{
	1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1, 5, 10,
}

// NewHistogram returns a histogram over the given ascending upper bounds.
// Nil or empty bounds select DefBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending at %d: %v", i, bounds))
		}
	}
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v > h.bounds[mid] {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// Buckets returns a snapshot of cumulative bucket counts aligned with
// Bounds(); the final entry is the total (+Inf bucket).
func (h *Histogram) Buckets() []int64 {
	out := make([]int64, len(h.counts))
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		out[i] = cum
	}
	return out
}

// Bounds returns the histogram's upper bounds (shared, read-only).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// Registry is a named collection of metrics with get-or-create semantics
// and a deterministic text exposition. Metric creation takes a mutex;
// updating a metric obtained from the registry is lock free, so
// instrumented code should hold on to the returned pointers.
type Registry struct {
	mu     sync.Mutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counts[name]
	if c == nil {
		c = new(Counter)
		r.counts[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = new(Gauge)
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bounds (nil selects DefBuckets) on first use. Later calls ignore
// bounds.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// WriteText writes a deterministic (name-sorted) expvar-style snapshot:
//
//	name value
//	hist_count N
//	hist_sum S
//	hist_bucket{le="0.001"} N
//	...
//	hist_bucket{le="+Inf"} N
//
// Counter and gauge lines carry the value verbatim; histogram lines are
// cumulative, Prometheus-style.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	type hsnap struct {
		name string
		h    *Histogram
	}
	lines := make([]string, 0, len(r.counts)+len(r.gauges))
	for name, c := range r.counts {
		lines = append(lines, fmt.Sprintf("%s %d", name, c.Value()))
	}
	for name, g := range r.gauges {
		lines = append(lines, fmt.Sprintf("%s %g", name, g.Value()))
	}
	hists := make([]hsnap, 0, len(r.hists))
	for name, h := range r.hists {
		hists = append(hists, hsnap{name, h})
	}
	r.mu.Unlock()

	for _, hs := range hists {
		buckets := hs.h.Buckets()
		var sb strings.Builder
		fmt.Fprintf(&sb, "%s_count %d\n", hs.name, hs.h.Count())
		fmt.Fprintf(&sb, "%s_sum %g\n", hs.name, hs.h.Sum())
		for i, b := range hs.h.Bounds() {
			fmt.Fprintf(&sb, "%s_bucket{le=%q} %d\n", hs.name, formatBound(b), buckets[i])
		}
		fmt.Fprintf(&sb, "%s_bucket{le=\"+Inf\"} %d", hs.name, buckets[len(buckets)-1])
		lines = append(lines, sb.String())
	}
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	return nil
}

func formatBound(b float64) string { return fmt.Sprintf("%g", b) }

// String returns the WriteText snapshot.
func (r *Registry) String() string {
	var sb strings.Builder
	_ = r.WriteText(&sb)
	return sb.String()
}

// ServeHTTP exposes the text snapshot over HTTP, so a serving process can
// mount the registry next to net/http/pprof.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_ = r.WriteText(w)
}

// Metrics is an Observer that folds phase-trace events into a Registry.
// Counter updates are order-independent, so the resulting snapshot is
// deterministic for a deterministic event multiset even when events
// arrive from concurrent goroutines.
type Metrics struct {
	reg *Registry

	auctions, auctionsInfeasible *Counter
	wdps, wdpsInfeasible         *Counter
	winners                      *Counter
	repairs, repairsFailed       *Counter
	retries, stragglers, drops   *Counter
	rounds, roundsUnderCovered   *Counter
	faultDrop, faultDelay        *Counter
	faultDup, faultCrash         *Counter
	pricings, pricingsCanceled   *Counter
	winnersPriced, pricingProbes *Counter
	batches, batchesCanceled     *Counter
	batchAuctions                *Counter
	recoveries, replayed         *Counter
	resubmitted                  *Counter
	walTornTails, walDupRecords  *Counter
	walOrphanPayments            *Counter
	rateLimited                  *Counter
	admissionRejected            *Counter
	certificates                 *Counter
	walCheckpoints               *Counter
	walCheckpointsFailed         *Counter
	walSegmentsPruned            *Counter
	walRotations                 *Counter
	groupCommits                 *Counter
	groupCommitRecords           *Counter
	payments, cost               *Gauge
	batchQueueDepth              *Gauge
	wdpSeconds, auctionSeconds   *Histogram
	repairSeconds                *Histogram
	pricingSeconds               *Histogram
	winnerPriceSeconds           *Histogram
	batchSeconds                 *Histogram
	recoverySeconds              *Histogram
	certRatio                    *Histogram
	checkpointSeconds            *Histogram
	groupCommitBatch             *Histogram
	groupCommitSeconds           *Histogram
}

// RatioBuckets are the bounds of the certified-approximation-ratio
// histogram: the dial positions of the quality-vs-speed frontier
// (1 = proven optimal, 1.05 and 1.2 = the frontier's benchmark gates)
// rather than latency decades.
var RatioBuckets = []float64{1, 1.01, 1.02, 1.05, 1.1, 1.2, 1.5, 2}

// BatchBuckets are the bounds of the group-commit batch-size histogram:
// how many records each coalesced fsync made durable, from a lone
// committer (no coalescing) up through saturated producers.
var BatchBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}

// NewMetrics returns a Metrics observer writing into reg (nil creates a
// fresh registry, retrievable via Registry).
func NewMetrics(reg *Registry) *Metrics {
	if reg == nil {
		reg = NewRegistry()
	}
	return &Metrics{
		reg:                  reg,
		auctions:             reg.Counter("afl_auctions_total"),
		auctionsInfeasible:   reg.Counter("afl_auctions_infeasible_total"),
		wdps:                 reg.Counter("afl_wdp_solves_total"),
		wdpsInfeasible:       reg.Counter("afl_wdp_infeasible_total"),
		winners:              reg.Counter("afl_winners_total"),
		repairs:              reg.Counter("afl_repairs_total"),
		repairsFailed:        reg.Counter("afl_repairs_failed_total"),
		retries:              reg.Counter("afl_retries_total"),
		stragglers:           reg.Counter("afl_stragglers_total"),
		drops:                reg.Counter("afl_dropouts_total"),
		rounds:               reg.Counter("afl_rounds_total"),
		roundsUnderCovered:   reg.Counter("afl_rounds_under_covered_total"),
		faultDrop:            reg.Counter("afl_faults_drop_total"),
		faultDelay:           reg.Counter("afl_faults_delay_total"),
		faultDup:             reg.Counter("afl_faults_dup_total"),
		faultCrash:           reg.Counter("afl_faults_crash_total"),
		pricings:             reg.Counter("afl_pricings_total"),
		pricingsCanceled:     reg.Counter("afl_pricings_canceled_total"),
		winnersPriced:        reg.Counter("afl_winners_priced_total"),
		pricingProbes:        reg.Counter("afl_pricing_probes_total"),
		batches:              reg.Counter("afl_batches_total"),
		batchesCanceled:      reg.Counter("afl_batches_canceled_total"),
		batchAuctions:        reg.Counter("afl_batch_auctions_total"),
		recoveries:           reg.Counter("afl_market_recoveries_total"),
		replayed:             reg.Counter("afl_market_replayed_outcomes_total"),
		resubmitted:          reg.Counter("afl_market_resubmitted_total"),
		walTornTails:         reg.Counter("afl_wal_torn_tails_total"),
		walDupRecords:        reg.Counter("afl_wal_dup_records_total"),
		walOrphanPayments:    reg.Counter("afl_wal_orphan_payments_total"),
		rateLimited:          reg.Counter("afl_rate_limited_total"),
		admissionRejected:    reg.Counter("afl_admission_rejected_total"),
		certificates:         reg.Counter("afl_certificates_total"),
		walCheckpoints:       reg.Counter("afl_wal_checkpoints_total"),
		walCheckpointsFailed: reg.Counter("afl_wal_checkpoints_failed_total"),
		walSegmentsPruned:    reg.Counter("afl_wal_segments_pruned_total"),
		walRotations:         reg.Counter("afl_wal_rotations_total"),
		groupCommits:         reg.Counter("afl_group_commits_total"),
		groupCommitRecords:   reg.Counter("afl_group_commit_records_total"),
		payments:             reg.Gauge("afl_payment_volume"),
		cost:                 reg.Gauge("afl_last_auction_cost"),
		batchQueueDepth:      reg.Gauge("afl_batch_queue_depth"),
		wdpSeconds:           reg.Histogram("afl_wdp_solve_seconds", nil),
		auctionSeconds:       reg.Histogram("afl_auction_seconds", nil),
		repairSeconds:        reg.Histogram("afl_repair_seconds", nil),
		pricingSeconds:       reg.Histogram("afl_pricing_seconds", nil),
		winnerPriceSeconds:   reg.Histogram("afl_winner_price_seconds", nil),
		batchSeconds:         reg.Histogram("afl_batch_seconds", nil),
		recoverySeconds:      reg.Histogram("afl_market_recovery_seconds", nil),
		certRatio:            reg.Histogram("afl_certificate_ratio", RatioBuckets),
		checkpointSeconds:    reg.Histogram("afl_wal_checkpoint_seconds", nil),
		groupCommitBatch:     reg.Histogram("afl_group_commit_batch", BatchBuckets),
		groupCommitSeconds:   reg.Histogram("afl_group_commit_seconds", nil),
	}
}

// Registry returns the backing registry.
func (m *Metrics) Registry() *Registry { return m.reg }

// Observe implements Observer.
func (m *Metrics) Observe(e Event) {
	switch e.Kind {
	case EvAuctionStarted:
		m.auctions.Inc()
	case EvWDPSolved:
		m.wdps.Inc()
		if !e.OK {
			m.wdpsInfeasible.Inc()
		}
		if e.Dur > 0 {
			m.wdpSeconds.ObserveDuration(e.Dur)
		}
	case EvWinnerAccepted:
		m.winners.Inc()
	case EvPaymentComputed:
		m.payments.Add(e.Value)
	case EvAuctionDone:
		if !e.OK {
			m.auctionsInfeasible.Inc()
		}
		m.cost.Set(e.Value)
		if e.Dur > 0 {
			m.auctionSeconds.ObserveDuration(e.Dur)
		}
	case EvRepairTriggered:
		m.repairs.Inc()
	case EvRepairDone:
		if !e.OK {
			m.repairsFailed.Inc()
		}
		if e.Dur > 0 {
			m.repairSeconds.ObserveDuration(e.Dur)
		}
	case EvRetryFired:
		m.retries.Inc()
	case EvStragglerDetected:
		m.stragglers.Inc()
	case EvDropDetected:
		m.drops.Inc()
	case EvRoundDone:
		m.rounds.Inc()
		if !e.OK {
			m.roundsUnderCovered.Inc()
		}
	case EvPricingStarted:
		m.pricings.Inc()
	case EvWinnerPriced:
		m.winnersPriced.Inc()
		m.pricingProbes.Add(int64(e.Round))
		if e.Dur > 0 {
			m.winnerPriceSeconds.ObserveDuration(e.Dur)
		}
	case EvPricingDone:
		if !e.OK {
			m.pricingsCanceled.Inc()
		}
		if e.Dur > 0 {
			m.pricingSeconds.ObserveDuration(e.Dur)
		}
	case EvBatchStarted:
		m.batches.Inc()
	case EvAuctionQueued:
		m.batchQueueDepth.Set(e.Value)
	case EvAuctionDequeued:
		m.batchAuctions.Inc()
		m.batchQueueDepth.Set(e.Value)
	case EvBatchDone:
		if !e.OK {
			m.batchesCanceled.Inc()
		}
		if e.Dur > 0 {
			m.batchSeconds.ObserveDuration(e.Dur)
		}
	case EvMarketRecovered:
		m.recoveries.Inc()
		m.replayed.Add(int64(e.Value))
		m.resubmitted.Add(int64(e.Round))
		if e.Dur > 0 {
			m.recoverySeconds.ObserveDuration(e.Dur)
		}
	case EvWALFault:
		switch e.Label {
		case "torn_tail":
			m.walTornTails.Inc()
		case "dup_record":
			m.walDupRecords.Inc()
		case "orphan_payment":
			m.walOrphanPayments.Inc()
		}
	case EvRateLimited:
		m.rateLimited.Inc()
	case EvAdmissionRejected:
		m.admissionRejected.Inc()
	case EvCertificateComputed:
		m.certificates.Inc()
		if e.OK && !math.IsInf(e.Value, 1) {
			m.certRatio.Observe(e.Value)
		}
	case EvWALCheckpoint:
		m.walCheckpoints.Inc()
		if !e.OK {
			m.walCheckpointsFailed.Inc()
		}
		m.walSegmentsPruned.Add(int64(e.Round))
		if e.Dur > 0 {
			m.checkpointSeconds.ObserveDuration(e.Dur)
		}
	case EvWALSegmentRotated:
		m.walRotations.Inc()
	case EvGroupCommit:
		m.groupCommits.Inc()
		m.groupCommitRecords.Add(int64(e.Value))
		m.groupCommitBatch.Observe(e.Value)
		if e.Dur > 0 {
			m.groupCommitSeconds.ObserveDuration(e.Dur)
		}
	case EvFaultInjected:
		switch e.Label {
		case "drop":
			m.faultDrop.Inc()
		case "delay":
			m.faultDelay.Inc()
		case "dup":
			m.faultDup.Inc()
		case "crash":
			m.faultCrash.Inc()
		}
	}
}
