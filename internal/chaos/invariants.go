package chaos

import (
	"bytes"
	"fmt"
	"math"

	"github.com/fedauction/afl/internal/core"
	"github.com/fedauction/afl/internal/platform"
)

// Check verifies the session invariants that must hold under every fault
// schedule:
//
//   - a round is flagged under-covered exactly when it aggregated fewer
//     than K updates, and any under-coverage is accounted for by a
//     recorded repair attempt (unless repair was disabled);
//   - the ledger is internally consistent (non-negative amounts, at most
//     one settlement per client, total equals the sum of entries);
//   - every honored settlement pays the client its award — which is at
//     least its bid price (individual rationality), for original winners
//     and promoted replacements alike;
//   - whatever an agent believes it was paid appears identically in the
//     server's ledger;
//   - the server's protocol transcript is a legal conversation
//     (platform.AuditTranscript) no matter what the network did.
func Check(s Scenario, out Outcome) error {
	job := s.job()
	rep := out.Report

	// Coverage accounting.
	underCovered := false
	for _, rr := range rep.Rounds {
		if got := len(rr.Responded) < job.K; rr.UnderCovered != got {
			return fmt.Errorf("round %d: UnderCovered=%v but %d/%d responders",
				rr.Iteration, rr.UnderCovered, len(rr.Responded), job.K)
		}
		if rr.UnderCovered {
			underCovered = true
		}
	}
	if underCovered && !s.DisableRepair && len(rep.Repairs) == 0 {
		return fmt.Errorf("under-covered round without any recorded repair attempt")
	}

	// Ledger consistency.
	var total float64
	seen := map[int]bool{}
	for _, e := range rep.Ledger.Entries() {
		if e.Amount < 0 {
			return fmt.Errorf("ledger: negative amount %v for client %d", e.Amount, e.Client)
		}
		if seen[e.Client] {
			return fmt.Errorf("ledger: duplicate settlement for client %d", e.Client)
		}
		seen[e.Client] = true
		total += e.Amount
	}
	if math.Abs(total-rep.Ledger.Total()) > 1e-9 {
		return fmt.Errorf("ledger: Total()=%v but entries sum to %v", rep.Ledger.Total(), total)
	}

	// Final award per client: the initial auction, overridden by repairs.
	awards := map[int]core.Winner{}
	for _, w := range rep.Auction.Winners {
		awards[w.Bid.Client] = w
	}
	for _, r := range rep.Repairs {
		for _, w := range r.Awards {
			awards[w.Bid.Client] = w
		}
	}
	for _, e := range rep.Ledger.Entries() {
		if e.Reason != "schedule honored" {
			continue
		}
		w, ok := awards[e.Client]
		if !ok {
			return fmt.Errorf("ledger: client %d paid without an award", e.Client)
		}
		if math.Abs(e.Amount-w.Payment) > 1e-9 {
			return fmt.Errorf("ledger: client %d paid %v, award says %v", e.Client, e.Amount, w.Payment)
		}
		if e.Amount < w.Bid.Price-1e-9 {
			return fmt.Errorf("ledger: client %d paid %v below its price %v (IR violated)",
				e.Client, e.Amount, w.Bid.Price)
		}
	}

	// Agent-side payment agreement. The converse need not hold: the
	// payment message itself can be lost in transit.
	for i, ar := range out.AgentReports {
		if ar.Paid <= 0 {
			continue
		}
		w, ok := awards[i]
		if !ok {
			return fmt.Errorf("agent %d believes it was paid %v without an award", i, ar.Paid)
		}
		if math.Abs(ar.Paid-w.Payment) > 1e-9 {
			return fmt.Errorf("agent %d believes it was paid %v, award says %v", i, ar.Paid, w.Payment)
		}
		found := false
		for _, e := range rep.Ledger.Entries() {
			if e.Client == i && math.Abs(e.Amount-ar.Paid) <= 1e-9 {
				found = true
			}
		}
		if !found {
			return fmt.Errorf("agent %d believes it was paid %v but the ledger disagrees", i, ar.Paid)
		}
	}

	// Protocol legality.
	entries, err := platform.ReadTranscript(bytes.NewReader(out.Transcript))
	if err != nil {
		return fmt.Errorf("transcript: %w", err)
	}
	if err := platform.AuditTranscript(entries); err != nil {
		return fmt.Errorf("transcript: %w", err)
	}
	return nil
}
