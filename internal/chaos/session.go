package chaos

import (
	"bytes"
	"fmt"
	"time"

	"github.com/fedauction/afl/internal/core"
	"github.com/fedauction/afl/internal/fl"
	"github.com/fedauction/afl/internal/obs"
	"github.com/fedauction/afl/internal/platform"
	"github.com/fedauction/afl/internal/stats"
)

// Scenario describes one self-contained session to run under a fault
// plan: the workload (datasets and bids) is generated deterministically
// from Seed unless explicit Bids are given.
type Scenario struct {
	// Seed generates the workload (datasets, bid windows, prices).
	Seed int64
	// Agents is the number of clients. Zero means 8.
	Agents int
	// Job is the announced FL job. A zero job means
	// {T: 6, K: 2, TMax: 60, Dim: 2}.
	Job platform.Job
	// Rule selects the payment rule of the auction.
	Rule core.PaymentRule
	// Faults is the fault schedule. The zero plan is fault-free.
	Faults FaultPlan
	// Retry is the server's per-message retry policy.
	Retry platform.RetryPolicy
	// RecvTimeout is the server's per-receive deadline. Zero means 2s.
	RecvTimeout time.Duration
	// DisableRepair turns off mid-session coverage repair.
	DisableRepair bool
	// Bids, when non-nil, overrides the generated bids per client.
	// Clients without an entry still connect and submit an empty bid
	// list.
	Bids map[int][]core.Bid
	// WallClock runs the session over plain channel pipes on the real
	// clock instead of the virtual stack. Only valid for fault-free
	// plans; used to prove the virtual path is bit-identical to the
	// original transport.
	WallClock bool
	// Observer, when non-nil, receives the session's phase events (auction
	// sweep, retries, stragglers, dropouts, repairs, rounds) and one
	// EvFaultInjected per applied fault. It is installed as both the
	// server's observer and the fault plan's, and must be safe for
	// concurrent use. The fault schedule and session outcome are
	// byte-identical with and without an observer.
	Observer obs.Observer
}

func (s Scenario) agents() int {
	if s.Agents <= 0 {
		return 8
	}
	return s.Agents
}

func (s Scenario) job() platform.Job {
	if s.Job == (platform.Job{}) {
		return platform.Job{Name: "chaos", T: 6, K: 2, TMax: 60, Dim: 2}
	}
	return s.Job
}

func (s Scenario) recvTimeout() time.Duration {
	if s.RecvTimeout <= 0 {
		return 2 * time.Second
	}
	return s.RecvTimeout
}

// Outcome is everything a chaos invariant can look at: both sides'
// reports plus the server's protocol transcript.
type Outcome struct {
	Report       platform.SessionReport
	AgentReports []platform.AgentReport
	Transcript   []byte
}

// Workload is the deterministic session input generated from a scenario
// seed: per-client datasets and bids.
type Workload struct {
	Eval   fl.Dataset
	Shards []fl.Dataset
	Bids   map[int][]core.Bid
	Thetas map[int]float64
}

// BuildWorkload generates the scenario's workload. It is a pure function
// of (Seed, Agents, Job), shared by the virtual and wall-clock paths so
// both run literally the same session input.
func BuildWorkload(s Scenario) Workload {
	n := s.agents()
	job := s.job()
	rng := stats.NewRNG(s.Seed)
	ds, _ := fl.GenerateSynthetic(rng, fl.SyntheticOptions{Samples: 60, Dim: job.Dim})
	w := Workload{
		Eval:   ds,
		Shards: fl.PartitionIID(rng, ds, n),
		Bids:   make(map[int][]core.Bid, n),
		Thetas: make(map[int]float64, n),
	}
	for i := 0; i < n; i++ {
		theta := rng.FloatRange(0.4, 0.7)
		start := rng.IntRange(1, 1+(job.T-1)/2)
		end := rng.IntRange(start, job.T)
		rounds := rng.IntRange(1, end-start+1)
		w.Thetas[i] = theta
		w.Bids[i] = []core.Bid{{
			Price:    rng.FloatRange(5, 50),
			Theta:    theta,
			Start:    start,
			End:      end,
			Rounds:   rounds,
			CompTime: rng.FloatRange(2, 6),
			CommTime: rng.FloatRange(5, 12),
		}}
	}
	if s.Bids != nil {
		w.Bids = s.Bids
	}
	for i := 0; i < n; i++ {
		if w.Bids[i] == nil {
			// Agents always answer the announcement; a client with nothing
			// to offer submits an empty (but well-formed) bid list.
			w.Bids[i] = []core.Bid{}
		}
	}
	return w
}

// Run executes the scenario end to end and returns the outcome. Agent
// failures surface as errors; a session that merely degrades (dropped
// clients, under-covered rounds) is a normal outcome, not an error.
func Run(s Scenario) (Outcome, error) {
	if s.WallClock && !s.Faults.zero() {
		return Outcome{}, fmt.Errorf("chaos: fault injection requires the virtual clock")
	}
	n := s.agents()
	job := s.job()
	w := BuildWorkload(s)

	var transcript bytes.Buffer
	cfg := platform.ServerConfig{
		Job:           job,
		Auction:       core.Config{PaymentRule: s.Rule},
		L2:            0.01,
		RecvTimeout:   s.recvTimeout(),
		Retry:         s.Retry,
		DisableRepair: s.DisableRepair,
		Transcript:    &transcript,
		Observer:      s.Observer,
	}
	faults := s.Faults
	faults.Observer = s.Observer

	buildAgent := func(i int, recvTimeout time.Duration) *platform.Agent {
		theta := w.Thetas[i]
		if bs := w.Bids[i]; len(bs) > 0 {
			theta = bs[0].Theta
		}
		return &platform.Agent{
			ID:          i,
			Bids:        w.Bids[i],
			Learner:     &fl.Client{ID: i, Data: w.Shards[i], Theta: theta, LR: 0.4},
			L2:          0.01,
			RecvTimeout: recvTimeout,
		}
	}

	out := Outcome{AgentReports: make([]platform.AgentReport, n)}
	agentErrs := make([]error, n)
	var serverErr error

	if s.WallClock {
		server := platform.NewServer(cfg)
		conns := make(map[int]platform.Conn, n)
		done := make(chan struct{})
		for i := 0; i < n; i++ {
			sc, ac := platform.Pipe(64)
			conns[i] = sc
			a := buildAgent(i, 15*time.Second)
			go func(i int, a *platform.Agent, c platform.Conn) {
				out.AgentReports[i], agentErrs[i] = a.Run(c)
				done <- struct{}{}
			}(i, a, ac)
		}
		out.Report, serverErr = server.RunSession(conns)
		for _, c := range conns {
			c.Close()
		}
		for i := 0; i < n; i++ {
			<-done
		}
	} else {
		clk := platform.NewVirtualClock()
		cfg.Clock = clk
		server := platform.NewServer(cfg)
		conns := make(map[int]platform.Conn, n)
		for i := 0; i < n; i++ {
			sc, ac := Link(clk, faults, i)
			conns[i] = sc
			a := buildAgent(i, 30*time.Minute)
			clk.Go(func() {
				out.AgentReports[i], agentErrs[i] = a.Run(ac)
			})
		}
		clk.Go(func() {
			out.Report, serverErr = server.RunSession(conns)
			for _, c := range conns {
				c.Close()
			}
		})
		clk.Wait()
	}

	if serverErr != nil {
		return out, fmt.Errorf("chaos: server: %w", serverErr)
	}
	for i, err := range agentErrs {
		if err != nil {
			return out, fmt.Errorf("chaos: agent %d: %w", i, err)
		}
	}
	out.Transcript = transcript.Bytes()
	return out, nil
}
