package chaos

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/fedauction/afl/internal/obs"
	"github.com/fedauction/afl/internal/platform"
)

// metricValue extracts one metric sample from a registry's text
// exposition.
func metricValue(t *testing.T, text, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				t.Fatalf("metric %s: %v", name, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in exposition", name)
	return 0
}

// TestObserverMetricsDeterministic replays the crash-repair scenario
// twice with a Metrics observer attached and requires byte-identical
// registry snapshots: the event multiset — faults injected, drops,
// retries, repairs, rounds — is a pure function of the scenario seed,
// and the observer must not perturb the schedule.
func TestObserverMetricsDeterministic(t *testing.T) {
	run := func() (string, Outcome) {
		met := obs.NewMetrics(nil)
		s := repairProbeScenario(20, 2)
		s.Observer = met
		out, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		return met.Registry().String(), out
	}
	text1, out := run()
	text2, _ := run()
	if text1 != text2 {
		t.Fatalf("metrics snapshot not deterministic:\n--- run 1 ---\n%s--- run 2 ---\n%s", text1, text2)
	}

	// The observer must not change the session itself: the un-observed
	// scenario yields the same outcome.
	bare, err := Run(repairProbeScenario(20, 2))
	if err != nil {
		t.Fatal(err)
	}
	if string(bare.Transcript) != string(out.Transcript) {
		t.Fatal("attaching an observer changed the session transcript")
	}

	// Cross-check the counters against the session report.
	if got, want := metricValue(t, text1, "afl_rounds_total"), float64(len(out.Report.Rounds)); got != want {
		t.Fatalf("afl_rounds_total = %v, report has %v rounds", got, want)
	}
	if got := metricValue(t, text1, "afl_auctions_total"); got != 1 {
		t.Fatalf("afl_auctions_total = %v", got)
	}
	if got := metricValue(t, text1, "afl_winners_total"); got != float64(len(out.Report.Auction.Winners)) {
		t.Fatalf("afl_winners_total = %v, auction had %d winners", got, len(out.Report.Auction.Winners))
	}
	if len(out.Report.Repairs) == 0 {
		t.Fatal("scenario no longer triggers a repair")
	}
	if got := metricValue(t, text1, "afl_repairs_total"); got < 1 {
		t.Fatalf("afl_repairs_total = %v despite %d repair records", got, len(out.Report.Repairs))
	}
	if got := metricValue(t, text1, "afl_faults_crash_total"); got < 1 {
		t.Fatalf("afl_faults_crash_total = %v for a crash scenario", got)
	}
	dropped := map[int]bool{}
	for _, rr := range out.Report.Rounds {
		for _, id := range rr.Failed {
			dropped[id] = true
		}
	}
	if got := metricValue(t, text1, "afl_dropouts_total"); got != float64(len(dropped)) {
		t.Fatalf("afl_dropouts_total = %v, report dropped %d clients", got, len(dropped))
	}
}

// TestObserverSeesRetriesAndStragglers drives a lossy scenario with
// retries enabled and checks the retry/straggler counters agree with the
// session report, deterministically across replays.
func TestObserverSeesRetriesAndStragglers(t *testing.T) {
	scenario := func(o obs.Observer) Scenario {
		return Scenario{
			Seed:     7,
			Agents:   10,
			Faults:   FaultPlan{Seed: 7, Drop: 0.05},
			Retry:    platform.RetryPolicy{Attempts: 3, Backoff: 10 * time.Millisecond},
			Observer: o,
		}
	}
	met := obs.NewMetrics(nil)
	out, err := Run(scenario(met))
	if err != nil {
		t.Fatal(err)
	}
	text := met.Registry().String()

	met2 := obs.NewMetrics(nil)
	if _, err := Run(scenario(met2)); err != nil {
		t.Fatal(err)
	}
	if text2 := met2.Registry().String(); text != text2 {
		t.Fatalf("lossy-scenario metrics not deterministic:\n--- run 1 ---\n%s--- run 2 ---\n%s", text, text2)
	}

	stragglers := 0
	for _, rr := range out.Report.Rounds {
		stragglers += len(rr.Stragglers)
	}
	if got := metricValue(t, text, "afl_stragglers_total"); got != float64(stragglers) {
		t.Fatalf("afl_stragglers_total = %v, report counted %d", got, stragglers)
	}
	retries := metricValue(t, text, "afl_retries_total")
	if retries < float64(stragglers) {
		t.Fatalf("afl_retries_total = %v < stragglers %d (every straggler needed a retry)", retries, stragglers)
	}
	if metricValue(t, text, "afl_faults_drop_total") < 1 {
		t.Fatal("lossy plan injected no drops")
	}
}
