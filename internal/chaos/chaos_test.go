package chaos

import (
	"bytes"
	"math"
	"testing"
	"time"

	"github.com/fedauction/afl/internal/core"
	"github.com/fedauction/afl/internal/platform"
	"github.com/fedauction/afl/internal/stats"
)

// scenarioForSeed derives a varied fault schedule from one seed: every
// probability, the retry budget and any crash point are functions of the
// seed alone.
func scenarioForSeed(seed int64) Scenario {
	r := stats.NewRNG(seed)
	plan := FaultPlan{
		Seed:      seed,
		Drop:      r.Float64() * 0.15,
		Delay:     r.Float64() * 0.5,
		MaxDelay:  time.Duration(1+r.Intn(4)) * 500 * time.Millisecond,
		Duplicate: r.Float64() * 0.25,
	}
	agents := 6 + r.Intn(4)
	if r.Bernoulli(0.5) {
		plan.Crash = map[int]int{r.Intn(agents): 1 + r.Intn(6)}
	}
	return Scenario{
		Seed:   seed,
		Agents: agents,
		Faults: plan,
		Retry:  platform.RetryPolicy{Attempts: 3, Backoff: 50 * time.Millisecond},
	}
}

// TestChaosSchedules replays hundreds of seeded fault schedules and
// asserts the session invariants on every one. Any failure reports the
// seed, which reproduces the exact session deterministically.
func TestChaosSchedules(t *testing.T) {
	n := 220
	if testing.Short() {
		n = 48
	}
	for i := 0; i < n; i++ {
		seed := int64(1000 + i)
		s := scenarioForSeed(seed)
		out, err := Run(s)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := Check(s, out); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

// TestChaosDeterministic runs the same seeds twice and demands byte-
// identical transcripts and identical settlement: the fault injector, the
// virtual clock and the server must be free of scheduling nondeterminism.
func TestChaosDeterministic(t *testing.T) {
	seeds := []int64{1001, 1007, 1013, 1042, 1077, 1099, 1123, 1160, 1191, 1219}
	if testing.Short() {
		seeds = seeds[:4]
	}
	for _, seed := range seeds {
		s := scenarioForSeed(seed)
		a, errA := Run(s)
		b, errB := Run(s)
		if errA != nil || errB != nil {
			t.Fatalf("seed %d: %v / %v", seed, errA, errB)
		}
		if !bytes.Equal(a.Transcript, b.Transcript) {
			t.Fatalf("seed %d: transcripts differ between identical runs", seed)
		}
		if a.Report.Ledger.Total() != b.Report.Ledger.Total() {
			t.Fatalf("seed %d: ledger totals differ: %v vs %v",
				seed, a.Report.Ledger.Total(), b.Report.Ledger.Total())
		}
		if len(a.Report.Rounds) != len(b.Report.Rounds) {
			t.Fatalf("seed %d: round counts differ", seed)
		}
	}
}

// TestZeroFaultMatchesWallClockTransport runs the identical fault-free
// workload over the virtual stack and over the original channel pipes on
// the wall clock: the transcripts must be byte-identical. This pins the
// guarantee that the fault-tolerant runtime changes nothing on the
// fault-free path.
func TestZeroFaultMatchesWallClockTransport(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		virtual := Scenario{Seed: seed}
		wall := Scenario{Seed: seed, WallClock: true}
		a, errA := Run(virtual)
		b, errB := Run(wall)
		if errA != nil || errB != nil {
			t.Fatalf("seed %d: %v / %v", seed, errA, errB)
		}
		if !bytes.Equal(a.Transcript, b.Transcript) {
			t.Fatalf("seed %d: virtual transcript diverges from the wall-clock transport", seed)
		}
		if err := Check(virtual, a); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

// repairProbeScenario is a hand-built session in which the single winner
// crashes at round 2 and the repair must promote a losing bid: agent 0
// wins all four rounds at price 1; agents 1-3 are losers priced so the
// residual market has a clear promotion order and a finite critical
// value.
func repairProbeScenario(probePrice float64, crash int) Scenario {
	bid := func(price float64) []core.Bid {
		return []core.Bid{{
			Price: price, Theta: 0.5, Start: 1, End: 4, Rounds: 4,
			CompTime: 2, CommTime: 5,
		}}
	}
	return Scenario{
		Seed:   77,
		Agents: 4,
		Job:    platform.Job{Name: "probe", T: 4, K: 1, TMax: 60, Dim: 2},
		Rule:   core.RuleExactCritical,
		Bids: map[int][]core.Bid{
			0: bid(1),
			1: bid(probePrice),
			2: bid(40),
			3: bid(60),
		},
		Faults: FaultPlan{Seed: 77, Crash: map[int]int{0: crash}},
		Retry:  platform.RetryPolicy{Attempts: 2, Backoff: 10 * time.Millisecond},
	}
}

func promotedPayment(t *testing.T, out Outcome, client int) (float64, bool) {
	t.Helper()
	for _, r := range out.Report.Repairs {
		for _, w := range r.Awards {
			if w.Bid.Client == client {
				return w.Payment, true
			}
		}
	}
	return 0, false
}

// TestRepairPromotionIsTruthful is the session-level misreport probe on
// the repair path: a promoted replacement's payment is its critical value
// in the residual market, so underbidding cannot change it and
// overbidding past it forfeits the promotion.
func TestRepairPromotionIsTruthful(t *testing.T) {
	base := repairProbeScenario(20, 2)
	out, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(base, out); err != nil {
		t.Fatal(err)
	}
	if len(out.Report.Auction.Winners) != 1 || out.Report.Auction.Winners[0].Bid.Client != 0 {
		t.Fatalf("setup: want agent 0 as sole winner, got %+v", out.Report.Auction.Winners)
	}
	pay, promoted := promotedPayment(t, out, 1)
	if !promoted {
		t.Fatalf("setup: agent 1 was not promoted; repairs: %+v", out.Report.Repairs)
	}
	if pay < 20 {
		t.Fatalf("promotion pays %v below the probe's price", pay)
	}

	// Underbidding: the promotion and its payment must not move.
	for _, lower := range []float64{5, 10, 19} {
		s := repairProbeScenario(lower, 2)
		o, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		if len(o.Report.Auction.Winners) != 1 || o.Report.Auction.Winners[0].Bid.Client != 0 {
			t.Fatalf("underbid %v changed the original auction", lower)
		}
		got, ok := promotedPayment(t, o, 1)
		if !ok {
			t.Fatalf("underbid %v lost the promotion", lower)
		}
		if math.Abs(got-pay) > 1e-6 {
			t.Fatalf("underbid %v moved the promotion payment: %v vs %v", lower, got, pay)
		}
	}

	// Overbidding past the critical value forfeits the promotion (a
	// cheaper competitor replaces the probe instead).
	over := repairProbeScenario(pay*1.01, 2)
	o, err := Run(over)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := promotedPayment(t, o, 1); ok {
		t.Fatalf("probe promoted despite bidding %v above its critical value %v", pay*1.01, pay)
	}
	if _, ok := promotedPayment(t, o, 2); !ok {
		t.Fatalf("no replacement promoted after the probe overbid; repairs: %+v", o.Report.Repairs)
	}
	if err := Check(over, o); err != nil {
		t.Fatal(err)
	}
}

// TestCrashTriggersRepairAndSettlement checks the graceful-degradation
// story end to end on the hand-built scenario: the crashed winner is
// refused payment, the replacement is paid, and the affected rounds are
// either repaired or flagged.
func TestCrashTriggersRepairAndSettlement(t *testing.T) {
	s := repairProbeScenario(20, 2)
	out, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if out.AgentReports[0].Paid != 0 {
		t.Fatalf("crashed winner was paid %v", out.AgentReports[0].Paid)
	}
	paidDropper := false
	for _, e := range out.Report.Ledger.Entries() {
		if e.Client == 0 && e.Amount != 0 {
			paidDropper = true
		}
	}
	if paidDropper {
		t.Fatal("ledger paid the crashed winner")
	}
	if len(out.Report.Repairs) == 0 || !out.Report.Repairs[0].Repaired {
		t.Fatalf("crash did not trigger a successful repair: %+v", out.Report.Repairs)
	}
	// Once coverage is repaired, later rounds must not be under-covered.
	from := out.Report.Repairs[0].CoveredFrom
	for _, rr := range out.Report.Rounds {
		if rr.Iteration >= from && rr.UnderCovered {
			t.Fatalf("round %d under-covered after repair from %d", rr.Iteration, from)
		}
	}
}
