// Package chaos provides deterministic fault injection for the networked
// auction platform: seeded fault schedules (message drops, delays,
// duplication and mid-session client crashes) layered over the platform's
// virtual-clock connections, a scenario harness that runs complete
// auction + training sessions under a fault plan, and session invariants
// that must hold on every schedule.
//
// Everything is a pure function of the scenario seed: the same seed
// replays the same session byte for byte (transcripts included), so a
// failing schedule is a permanent reproducer, not a flake.
package chaos

import (
	"time"

	"github.com/fedauction/afl/internal/obs"
	"github.com/fedauction/afl/internal/platform"
	"github.com/fedauction/afl/internal/stats"
)

// FaultPlan is a deterministic fault schedule for one session. Each
// directed link (server→client, client→server) draws from its own RNG
// stream seeded from Seed and the client ID, so fault decisions depend
// only on the message sequence of that direction — never on goroutine
// scheduling.
type FaultPlan struct {
	// Seed drives every fault decision.
	Seed int64
	// Drop is the per-message probability of silent loss.
	Drop float64
	// Delay is the per-message probability of delivery latency, drawn
	// uniformly from (0, MaxDelay]. Delayed messages can overtake later
	// traffic, so this also models reordering.
	Delay float64
	// MaxDelay bounds injected latency. Zero with Delay > 0 means 1s.
	MaxDelay time.Duration
	// Duplicate is the per-message probability of a second delivery.
	Duplicate float64
	// Crash maps client ID → global iteration r: from round r on, the
	// client is unreachable for training — round requests with iteration
	// ≥ r and its updates for iterations ≥ r are swallowed. The rule is a
	// pure function of message content, which keeps concurrent sessions
	// deterministic (no shared link state whose flip order could race).
	Crash map[int]int
	// Observer, when non-nil, receives one EvFaultInjected event per fault
	// actually applied (Label "drop", "delay", "dup" or "crash"; Value is
	// the injected latency in seconds for delays). Links send from
	// concurrent goroutines, so the observer must be safe for concurrent
	// use. The observer never influences fault decisions: the RNG draw
	// order is identical with and without one.
	Observer obs.Observer
}

// zero reports whether the plan injects no faults at all.
func (p FaultPlan) zero() bool {
	return p.Drop == 0 && p.Delay == 0 && p.Duplicate == 0 && len(p.Crash) == 0
}

// linkSeed derives the RNG seed of one directed link. dir is 0 for
// server→client, 1 for client→server.
func linkSeed(seed int64, client, dir int) int64 {
	return seed*1_000_003 + int64(client)*2 + int64(dir) + 1
}

// Link returns a server-side and client-side connection pair for one
// client, backed by a VirtualPipe on clk with the plan's faults applied
// to every send. Each endpoint must have a single sender and a single
// receiver (the discipline the platform already imposes).
func Link(clk *platform.VirtualClock, plan FaultPlan, client int) (server, agent platform.Conn) {
	s, c := platform.VirtualPipe(clk)
	crash := plan.Crash[client]
	server = &chaosConn{
		Conn:     s,
		ds:       s.(platform.DelayedSender),
		rng:      stats.NewRNG(linkSeed(plan.Seed, client, 0)),
		plan:     plan,
		crash:    crash,
		client:   client,
		toClient: true,
	}
	agent = &chaosConn{
		Conn:   c,
		ds:     c.(platform.DelayedSender),
		rng:    stats.NewRNG(linkSeed(plan.Seed, client, 1)),
		plan:   plan,
		crash:  crash,
		client: client,
	}
	return server, agent
}

// chaosConn applies a fault plan to the send side of one directed link.
// Receives pass through untouched: every fault is modelled at the sender,
// where a fixed draw order (drop, delay, delay amount, duplicate — all
// drawn for every message) keeps the RNG stream aligned with the
// direction's message sequence.
type chaosConn struct {
	platform.Conn
	ds       platform.DelayedSender
	rng      *stats.RNG
	plan     FaultPlan
	crash    int
	client   int
	toClient bool
}

// fault reports one applied fault to the plan's observer (if any). The
// event's Round is the global iteration the faulted message belongs to
// (0 for handshake traffic), and Value carries the injected latency in
// seconds for delays.
func (c *chaosConn) fault(label string, m platform.Message, d time.Duration) {
	if c.plan.Observer == nil {
		return
	}
	round := 0
	switch {
	case m.Type == platform.MsgRound && m.Round != nil:
		round = m.Round.Iteration
	case m.Type == platform.MsgUpdate && m.Update != nil:
		round = m.Update.Iteration
	}
	c.plan.Observer.Observe(obs.Event{
		Kind: obs.EvFaultInjected, Round: round, Client: c.client, Bid: -1,
		Value: d.Seconds(), Label: label,
	})
}

// Send implements platform.Conn.
func (c *chaosConn) Send(m platform.Message) error {
	if err := m.Validate(); err != nil {
		return err
	}
	dropDraw := c.rng.Float64()
	delayDraw := c.rng.Float64()
	delayFrac := c.rng.Float64()
	dupDraw := c.rng.Float64()
	if c.crash > 0 {
		if c.toClient && m.Type == platform.MsgRound && m.Round.Iteration >= c.crash {
			c.fault("crash", m, 0)
			return nil // the client is gone: the request vanishes
		}
		if !c.toClient && m.Type == platform.MsgUpdate && m.Update.Iteration >= c.crash {
			c.fault("crash", m, 0)
			return nil // and nothing it would have trained comes back
		}
	}
	if dropDraw < c.plan.Drop {
		c.fault("drop", m, 0)
		return nil
	}
	var d time.Duration
	if delayDraw < c.plan.Delay {
		max := c.plan.MaxDelay
		if max <= 0 {
			max = time.Second
		}
		d = time.Duration(delayFrac * float64(max))
		c.fault("delay", m, d)
	}
	if err := c.ds.SendDelayed(m, d); err != nil {
		return err
	}
	if dupDraw < c.plan.Duplicate {
		c.fault("dup", m, d)
		return c.ds.SendDelayed(m, d)
	}
	return nil
}
