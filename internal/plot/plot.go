// Package plot renders experiment results as ASCII line charts and CSV
// files. The paper's figures were produced with MATLAB; this repository
// emits every figure as a CSV series (for external plotting) plus a
// terminal rendering good enough to read the shape — who wins, by how
// much, and where crossovers fall.
package plot

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Point is one (x, y) sample.
type Point struct {
	X, Y float64
}

// Series is a named sequence of points.
type Series struct {
	Name   string
	Points []Point
}

// Chart is a renderable multi-series line chart.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// markers distinguish series in the grid; series beyond the set reuse the
// last marker.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Render draws the chart on a width×height character grid with axes and a
// legend. Degenerate charts (no finite points) render a note instead.
func (c Chart) Render(width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	finite := 0
	for _, s := range c.Series {
		for _, p := range s.Points {
			if math.IsNaN(p.X) || math.IsNaN(p.Y) || math.IsInf(p.X, 0) || math.IsInf(p.Y, 0) {
				continue
			}
			finite++
			minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
			minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
		}
	}
	var sb strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&sb, "%s\n", c.Title)
	}
	if finite == 0 {
		sb.WriteString("(no data)\n")
		return sb.String()
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range c.Series {
		mark := markers[min(si, len(markers)-1)]
		for _, p := range s.Points {
			if math.IsNaN(p.X) || math.IsNaN(p.Y) || math.IsInf(p.X, 0) || math.IsInf(p.Y, 0) {
				continue
			}
			col := int(math.Round((p.X - minX) / (maxX - minX) * float64(width-1)))
			row := height - 1 - int(math.Round((p.Y-minY)/(maxY-minY)*float64(height-1)))
			grid[row][col] = mark
		}
	}
	yHi := formatTick(maxY)
	yLo := formatTick(minY)
	pad := max(len(yHi), len(yLo))
	for r, row := range grid {
		label := strings.Repeat(" ", pad)
		switch r {
		case 0:
			label = fmt.Sprintf("%*s", pad, yHi)
		case height - 1:
			label = fmt.Sprintf("%*s", pad, yLo)
		}
		fmt.Fprintf(&sb, "%s |%s\n", label, string(row))
	}
	fmt.Fprintf(&sb, "%s +%s\n", strings.Repeat(" ", pad), strings.Repeat("-", width))
	fmt.Fprintf(&sb, "%s  %-*s%s\n", strings.Repeat(" ", pad), width-len(formatTick(maxX)), formatTick(minX), formatTick(maxX))
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&sb, "x: %s   y: %s\n", c.XLabel, c.YLabel)
	}
	for si, s := range c.Series {
		fmt.Fprintf(&sb, "  %c %s\n", markers[min(si, len(markers)-1)], s.Name)
	}
	return sb.String()
}

func formatTick(v float64) string {
	switch {
	case v == math.Trunc(v) && math.Abs(v) < 1e7:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1000 || (math.Abs(v) < 0.01 && v != 0):
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// CSV renders the chart's series as CSV rows: the first column is x, one
// column per series (aligned on the union of x values; missing cells stay
// empty).
func (c Chart) CSV() string {
	xs := map[float64]bool{}
	for _, s := range c.Series {
		for _, p := range s.Points {
			xs[p.X] = true
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)
	var sb strings.Builder
	sb.WriteString(csvEscape(firstNonEmpty(c.XLabel, "x")))
	for _, s := range c.Series {
		sb.WriteByte(',')
		sb.WriteString(csvEscape(s.Name))
	}
	sb.WriteByte('\n')
	for _, x := range sorted {
		fmt.Fprintf(&sb, "%g", x)
		for _, s := range c.Series {
			sb.WriteByte(',')
			for _, p := range s.Points {
				if p.X == x {
					fmt.Fprintf(&sb, "%g", p.Y)
					break
				}
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

func firstNonEmpty(a, b string) string {
	if a != "" {
		return a
	}
	return b
}

// Table renders rows with aligned columns for terminal reports.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[min(i, len(widths)-1)], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return sb.String()
}
