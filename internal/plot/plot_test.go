package plot

import (
	"math"
	"strings"
	"testing"
)

func TestRenderBasic(t *testing.T) {
	c := Chart{
		Title:  "demo",
		XLabel: "n",
		YLabel: "cost",
		Series: []Series{
			{Name: "A", Points: []Point{{1, 1}, {2, 2}, {3, 3}}},
			{Name: "B", Points: []Point{{1, 3}, {2, 2}, {3, 1}}},
		},
	}
	out := c.Render(40, 10)
	for _, want := range []string{"demo", "*", "o", "A", "B", "x: n   y: cost"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 12 {
		t.Fatalf("render too short: %d lines", len(lines))
	}
}

func TestRenderDegenerate(t *testing.T) {
	if out := (Chart{Title: "empty"}).Render(40, 10); !strings.Contains(out, "(no data)") {
		t.Fatalf("empty chart rendered %q", out)
	}
	c := Chart{Series: []Series{{Name: "nan", Points: []Point{{math.NaN(), 1}, {1, math.Inf(1)}}}}}
	if out := c.Render(40, 10); !strings.Contains(out, "(no data)") {
		t.Fatalf("non-finite-only chart rendered %q", out)
	}
	// A single point must not divide by zero.
	c2 := Chart{Series: []Series{{Name: "pt", Points: []Point{{5, 7}}}}}
	if out := c2.Render(40, 10); !strings.Contains(out, "*") {
		t.Fatalf("single point not drawn:\n%s", out)
	}
	// Tiny requested sizes are clamped.
	if out := c2.Render(1, 1); out == "" {
		t.Fatal("clamped render empty")
	}
}

func TestCSV(t *testing.T) {
	c := Chart{
		XLabel: "I",
		Series: []Series{
			{Name: "A_FL", Points: []Point{{100, 1.5}, {200, 2.5}}},
			{Name: "FCFS", Points: []Point{{200, 5}, {300, 6}}},
		},
	}
	got := c.CSV()
	want := "I,A_FL,FCFS\n100,1.5,\n200,2.5,5\n300,,6\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
	// Escaping.
	c2 := Chart{Series: []Series{{Name: `a,"b"`, Points: []Point{{1, 2}}}}}
	if !strings.Contains(c2.CSV(), `"a,""b"""`) {
		t.Fatalf("CSV escaping wrong: %q", c2.CSV())
	}
	// Default x label.
	if !strings.HasPrefix((Chart{}).CSV(), "x") {
		t.Fatal("default x header missing")
	}
}

func TestTable(t *testing.T) {
	out := Table([]string{"algo", "cost"}, [][]string{
		{"A_FL", "417.9"},
		{"FCFS", "1694.0"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "algo") || !strings.Contains(lines[0], "cost") {
		t.Fatalf("header wrong: %q", lines[0])
	}
	if !strings.Contains(lines[1], "----") {
		t.Fatalf("separator wrong: %q", lines[1])
	}
}
