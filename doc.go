// Package afl is a Go implementation of the truthful procurement auction
// for federated learning from
//
//	Zhou, Pang, Wang, Lui, Li. "A Truthful Procurement Auction for
//	Incentivizing Heterogeneous Clients in Federated Learning."
//	IEEE ICDCS 2021.
//
// A cloud server needs K mobile clients in every global iteration of a
// federated-learning job. Clients submit sealed bids — claimed cost, local
// accuracy θ, an availability window of global iterations, and a number of
// participation rounds. The A_FL auction jointly chooses the number of
// global iterations T_g (coupled to the winners' accuracies via
// T_g ≥ 1/(1−θ_max)), the winning bids, each winner's schedule, and
// truthful critical-value payments, approximately minimizing social cost.
//
// The root package is the public facade: the auction itself (RunAuction,
// RunWDP, CheckSolution), the paper's §VII-A workload generator
// (GenerateWorkload), the comparison baselines (FCFS, Greedy, AOnline),
// a federated-learning simulator that executes the winning schedule
// (Train, FLClient), and a networked auctioneer/client platform
// (Server, Agent) with in-memory and TCP transports.
//
// # Quick start
//
//	bids, _ := afl.GenerateWorkload(afl.DefaultWorkloadParams())
//	cfg := afl.Config{T: 50, K: 20, TMax: 60}
//	res, err := afl.RunAuction(bids, cfg)
//	// res.Tg, res.Winners (schedules + payments), res.Cost,
//	// res.Dual.RatioBound (per-instance approximation certificate)
//
// Experiment reproduction (the paper's Fig. 3–9) lives in cmd/aflsim and
// the benchmarks in bench_test.go.
package afl
