// Package afl is a Go implementation of the truthful procurement auction
// for federated learning from
//
//	Zhou, Pang, Wang, Lui, Li. "A Truthful Procurement Auction for
//	Incentivizing Heterogeneous Clients in Federated Learning."
//	IEEE ICDCS 2021.
//
// A cloud server needs K mobile clients in every global iteration of a
// federated-learning job. Clients submit sealed bids — claimed cost, local
// accuracy θ, an availability window of global iterations, and a number of
// participation rounds. The A_FL auction jointly chooses the number of
// global iterations T_g (coupled to the winners' accuracies via
// T_g ≥ 1/(1−θ_max)), the winning bids, each winner's schedule, and
// truthful critical-value payments, approximately minimizing social cost.
//
// The root package is the public facade: the auction itself (RunAuction,
// RunWDP, CheckSolution), the paper's §VII-A workload generator
// (GenerateWorkload), the comparison baselines (FCFS, Greedy, AOnline),
// a federated-learning simulator that executes the winning schedule
// (Train, FLClient), and a networked auctioneer/client platform
// (Server, Agent) with in-memory and TCP transports.
//
// # Quick start
//
//	bids, _ := afl.GenerateWorkload(afl.DefaultWorkloadParams())
//	cfg := afl.Config{T: 50, K: 20, TMax: 60}
//	res, err := afl.Run(context.Background(), bids, cfg)
//	// res.Tg, res.Winners (schedules + payments), res.Cost,
//	// res.Dual.RatioBound (per-instance approximation certificate)
//
// Experiment reproduction (the paper's Fig. 3–9) lives in cmd/aflsim and
// the benchmarks in bench_test.go.
//
// # Migrating from RunAuction / RunAuctionConcurrent
//
// Run supersedes both one-shot entry points. The mapping is mechanical —
// results are bit-identical for every worker count:
//
//	RunAuction(bids, cfg)               → Run(ctx, bids, cfg)
//	RunAuctionConcurrent(bids, cfg, n)  → Run(ctx, bids, cfg, WithWorkers(n))   // n > 0
//	RunAuctionConcurrent(bids, cfg, 0)  → Run(ctx, bids, cfg, WithWorkers(-1))  // GOMAXPROCS
//
// Two behavioural upgrades come with the move:
//
//   - Cancellation: Run honors ctx mid-sweep. A canceled run abandons the
//     remaining winner-determination problems and returns an error
//     matching both ErrCanceled and the context cause under errors.Is.
//   - Sentinel errors: an infeasible auction — which RunAuction reported
//     as (Result{Feasible: false}, nil) — surfaces as ErrInfeasible from
//     Run, with the Result still carrying every per-T̂_g WDP outcome.
//     Validation failures keep their sentinels (ErrNoBids et al.).
//
// Further options: WithObserver streams structured phase events (see
// Observer, Trace, Metrics) at zero cost when omitted, WithNow injects a
// deterministic clock for golden-testing traces, and WithPaymentRule
// overrides cfg.PaymentRule for one call. Engines offer the same surface
// via Engine.RunCtx and Engine.Observe.
//
// # Migrating from []Bid to BidSet
//
// Every []Bid entry point now has a columnar twin that accepts a BidSet,
// the struct-of-arrays form built once by CompileBids. The row-oriented
// paths remain fully supported — they compile on entry and return
// bit-identical results — but a population solved more than once should
// be compiled once and the handle shared:
//
//	set := afl.CompileBids(bids)
//	RunSet(ctx, set, cfg, opts...)       // Run for a compiled population
//	Instance{Set: set, Cfg: cfg}         // RunBatch / Service.Submit
//	NewEngineSet(set, cfg)               // NewEngine without the compile
//
// A BidSet is immutable after CompileBids and safe for concurrent use:
// one compiled million-bid population can back a whole batch, whose
// workers then warm-start across consecutive instances sharing the
// handle (the engine rebind skips validation and the entire
// qualification rebuild). The round trip is exact — set.Bids() returns
// the compiled rows field-for-field — so row-oriented consumers (the
// market's log encoding, diagnostics) interoperate losslessly.
//
// # Approximate solvers
//
// WithSolver selects the sweep's enumeration strategy per call. The
// default, SolverExact, solves every candidate T̂_g — bit-identical to
// the historical behaviour, Result.Cert nil. SolverCoarseFine solves a
// curvature-adaptive subset (WithStride sets the coarse granularity;
// stride 1 degenerates to the exact sweep bit-for-bit) and
// SolverLPRound adds an LP-rounding pass that can return a cover
// cheaper than the greedy sweep. Both approximate tiers attach a
// Certificate whose Ratio certifies how far the reported cost can be
// from what the full exact enumeration would have returned; payments
// are always the exact critical values at the selected T̂_g. The same
// knob rides through RunSet, RunBatch, Service.Submit and the market
// daemon, whose WAL persists the solver name and certified ratio.
//
// # Observability
//
// The stack emits structured phase events — auction started, each T̂_g's
// WDP solved, winners accepted, payments computed, repairs, retries,
// stragglers, dropouts, injected faults — through the Observer interface.
// Attach one with WithObserver (auctions), ServerConfig.Observer
// (sessions) or chaos Scenario.Observer (fault-injection runs). Trace
// records events verbatim; NewMetrics folds them into counters, gauges
// and latency histograms with deterministic text exposition
// (Registry.WriteText / ServeHTTP). When no observer is attached the
// instrumentation vanishes: nil checks guard every hook, so the hot path
// performs no timing calls and no extra allocations.
package afl
