module github.com/fedauction/afl

go 1.22
