package afl

import (
	"github.com/fedauction/afl/internal/obs"
)

// Observability types, re-exported from the implementation package. The
// auction stack emits structured phase events through the Observer
// attached with WithObserver (or ServerConfig.Observer / chaos
// Scenario.Observer for sessions); Trace records them verbatim, Metrics
// folds them into counters/gauges/histograms served by a Registry.
type (
	// Observer receives structured phase events. Implementations must be
	// safe for concurrent use when attached to concurrent runs.
	Observer = obs.Observer
	// ObserverFunc adapts a function to the Observer interface.
	ObserverFunc = obs.ObserverFunc
	// Event is one structured phase event. The zero Client/Bid convention
	// is -1 (not applicable); see the field docs.
	Event = obs.Event
	// EventKind enumerates the phases an Event can report.
	EventKind = obs.EventKind
	// Trace is an append-only, concurrency-safe event recorder.
	Trace = obs.Trace
	// Registry is a set of named metrics with deterministic text
	// exposition (Prometheus-style) and an http.Handler.
	Registry = obs.Registry
	// Metrics is an Observer folding events into a Registry of counters,
	// gauges and latency histograms.
	Metrics = obs.Metrics
	// Counter is a monotonically increasing atomic counter.
	Counter = obs.Counter
	// Gauge is an atomically settable float value.
	Gauge = obs.Gauge
	// Histogram is a fixed-bucket latency/value histogram.
	Histogram = obs.Histogram
)

// Event kinds emitted by the auction core, the session platform and the
// chaos harness.
const (
	EvAuctionStarted    = obs.EvAuctionStarted
	EvWDPSolved         = obs.EvWDPSolved
	EvWinnerAccepted    = obs.EvWinnerAccepted
	EvPaymentComputed   = obs.EvPaymentComputed
	EvAuctionDone       = obs.EvAuctionDone
	EvRepairTriggered   = obs.EvRepairTriggered
	EvRepairDone        = obs.EvRepairDone
	EvRetryFired        = obs.EvRetryFired
	EvStragglerDetected = obs.EvStragglerDetected
	EvDropDetected      = obs.EvDropDetected
	EvRoundDone         = obs.EvRoundDone
	EvFaultInjected     = obs.EvFaultInjected
	EvPricingStarted    = obs.EvPricingStarted
	EvWinnerPriced      = obs.EvWinnerPriced
	EvPricingDone       = obs.EvPricingDone
	EvBatchStarted      = obs.EvBatchStarted
	EvAuctionQueued     = obs.EvAuctionQueued
	EvAuctionDequeued   = obs.EvAuctionDequeued
	EvBatchDone         = obs.EvBatchDone
)

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry { return obs.NewRegistry() }

// NewMetrics returns a Metrics observer registering the auction-stack
// metric families in reg (a nil reg allocates a fresh Registry, reachable
// via Metrics.Registry).
func NewMetrics(reg *Registry) *Metrics { return obs.NewMetrics(reg) }

// MultiObserver fans events out to several observers in order (nils are
// dropped).
func MultiObserver(observers ...Observer) Observer { return obs.Multi(observers...) }

// FormatEvent renders one event as a stable single-line string (the
// format Trace.String uses).
func FormatEvent(e Event) string { return obs.FormatEvent(e) }

// StartProfiles starts a CPU profile at cpuPath and arranges for an
// allocation (heap) profile at memPath; either path may be empty to skip
// that profile. The returned stop function finishes both and must be
// called before exit (defer it).
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	return obs.StartProfiles(cpuPath, memPath)
}
