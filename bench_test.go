package afl_test

// Benchmark harness: one benchmark per figure of the paper's evaluation
// section (there are no numeric tables; Table I is notation). Each
// benchmark regenerates its figure's series at reduced ("quick") scale so
// `go test -bench=.` completes in minutes; run cmd/aflsim for the
// full-scale figures and CSV output.
//
// Micro-benchmarks for the core algorithm at paper scale follow the
// figure benchmarks.

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/fedauction/afl"
	"github.com/fedauction/afl/internal/baseline"
	"github.com/fedauction/afl/internal/core"
	"github.com/fedauction/afl/internal/experiments"
	"github.com/fedauction/afl/internal/seedwdp"
)

func benchFigure(b *testing.B, id string) {
	b.Helper()
	runner := experiments.Registry[id]
	if runner == nil {
		b.Fatalf("unknown figure %s", id)
	}
	for i := 0; i < b.N; i++ {
		fig := runner(experiments.Options{Seed: int64(i + 1), Quick: true})
		if len(fig.Chart.Series) == 0 {
			b.Fatalf("%s produced no series", id)
		}
	}
}

// BenchmarkFig3WinnerRatio regenerates Fig. 3: performance ratio of
// A_winner across T̂_g and bids-per-client J.
func BenchmarkFig3WinnerRatio(b *testing.B) { benchFigure(b, "fig3") }

// BenchmarkFig4AuctionRatio regenerates Fig. 4: performance ratio of all
// four algorithms across client counts.
func BenchmarkFig4AuctionRatio(b *testing.B) { benchFigure(b, "fig4") }

// BenchmarkFig4JAuctionRatio regenerates the J sweep of Fig. 4.
func BenchmarkFig4JAuctionRatio(b *testing.B) { benchFigure(b, "fig4j") }

// BenchmarkFig5CostVsClients regenerates Fig. 5: social cost vs I.
func BenchmarkFig5CostVsClients(b *testing.B) { benchFigure(b, "fig5") }

// BenchmarkFig6CostVsBids regenerates Fig. 6: social cost vs J.
func BenchmarkFig6CostVsBids(b *testing.B) { benchFigure(b, "fig6") }

// BenchmarkFig7CostVsTg regenerates Fig. 7: social cost at fixed T̂_g
// (resource-proportional costs; shows the computation/communication
// balance point).
func BenchmarkFig7CostVsTg(b *testing.B) { benchFigure(b, "fig7") }

// BenchmarkFig8RunningTime regenerates Fig. 8: A_FL vs A_online runtime.
func BenchmarkFig8RunningTime(b *testing.B) { benchFigure(b, "fig8") }

// BenchmarkFig9PaymentVsCost regenerates Fig. 9: payment vs claimed cost
// per winner (individual rationality).
func BenchmarkFig9PaymentVsCost(b *testing.B) { benchFigure(b, "fig9") }

// --- core algorithm micro-benchmarks at the paper's default scale ---

func paperBids(b *testing.B, clients, bidsPer int) ([]afl.Bid, afl.Config) {
	b.Helper()
	p := afl.DefaultWorkloadParams()
	p.Clients = clients
	p.BidsPerUser = bidsPer
	bids, err := afl.GenerateWorkload(p)
	if err != nil {
		b.Fatal(err)
	}
	return bids, p.Config()
}

// BenchmarkRunAuctionI1000 measures the full A_FL enumeration at the
// paper's default I=1000, J=5, T=50, K=20.
func BenchmarkRunAuctionI1000(b *testing.B) {
	bids, cfg := paperBids(b, 1000, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := afl.RunAuction(bids, cfg)
		if err != nil || !res.Feasible {
			b.Fatalf("auction failed: %v", err)
		}
	}
}

// BenchmarkRunAuctionI9000 measures the paper's largest input
// (I=9000, J=10), the right-most point of Fig. 8.
func BenchmarkRunAuctionI9000(b *testing.B) {
	bids, cfg := paperBids(b, 9000, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := afl.RunAuction(bids, cfg)
		if err != nil || !res.Feasible {
			b.Fatalf("auction failed: %v", err)
		}
	}
}

// BenchmarkRunAuctionConcurrent measures the parallel T̂_g fan-out at the
// paper's default scale; compare with BenchmarkRunAuctionI1000.
func BenchmarkRunAuctionConcurrent(b *testing.B) {
	bids, cfg := paperBids(b, 1000, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := afl.RunAuctionConcurrent(bids, cfg, 0)
		if err != nil || !res.Feasible {
			b.Fatalf("auction failed: %v", err)
		}
	}
}

// BenchmarkSolveWDP measures one winner-determination problem (A_winner)
// at T̂_g=50.
func BenchmarkSolveWDP(b *testing.B) {
	bids, cfg := paperBids(b, 1000, 5)
	qual := core.Qualified(bids, cfg.T, cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := core.SolveWDP(bids, qual, cfg.T, cfg)
		if !res.Feasible {
			b.Fatal("WDP infeasible")
		}
	}
}

// BenchmarkBaselines measures each comparison mechanism on the same WDP.
func BenchmarkBaselines(b *testing.B) {
	bids, cfg := paperBids(b, 1000, 5)
	qual := core.Qualified(bids, cfg.T, cfg)
	for _, m := range []baseline.Mechanism{baseline.FCFS{}, baseline.Greedy{}, baseline.AOnline{}} {
		b.Run(m.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out := m.Solve(bids, qual, cfg.T, cfg)
				if !out.Feasible {
					b.Fatal("baseline infeasible")
				}
			}
		})
	}
}

// --- incremental engine vs the frozen seed solver ---
//
// BenchmarkSweep* compare the T̂_g sweep across implementations at
// I ∈ {100, 500, 1000} (J=5, T=50, K=20): the frozen pre-refactor solver
// (internal/seedwdp), the incremental sequential and concurrent paths, and
// a reused Engine. cmd/benchcore runs the same pairs and writes
// BENCH_core.json; the differential suite guarantees all paths return
// bit-identical results, so these measure pure overhead.

var sweepSizes = []int{100, 500, 1000}

// sweepBids is paperBids with the coverage demand scaled down below
// I=200: the paper's K=20 is infeasible for a 100-client population.
func sweepBids(b *testing.B, clients int) ([]afl.Bid, afl.Config) {
	b.Helper()
	p := afl.DefaultWorkloadParams()
	p.Clients = clients
	if clients < 200 {
		p.K = 10
	}
	bids, err := afl.GenerateWorkload(p)
	if err != nil {
		b.Fatal(err)
	}
	return bids, p.Config()
}

func benchSweep(b *testing.B, run func(bids []afl.Bid, cfg afl.Config) bool) {
	b.Helper()
	for _, clients := range sweepSizes {
		b.Run(fmt.Sprintf("I%d", clients), func(b *testing.B) {
			bids, cfg := sweepBids(b, clients)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !run(bids, cfg) {
					b.Fatal("sweep infeasible")
				}
			}
		})
	}
}

// BenchmarkSweepSeed is the pre-refactor baseline: per-T̂_g re-filtering
// and map-based solver state, frozen verbatim in internal/seedwdp.
func BenchmarkSweepSeed(b *testing.B) {
	benchSweep(b, func(bids []afl.Bid, cfg afl.Config) bool {
		res, err := seedwdp.RunAuction(bids, cfg)
		return err == nil && res.Feasible
	})
}

// BenchmarkSweepIncremental is the shared-context sequential sweep behind
// RunAuction.
func BenchmarkSweepIncremental(b *testing.B) {
	benchSweep(b, func(bids []afl.Bid, cfg afl.Config) bool {
		res, err := afl.RunAuction(bids, cfg)
		return err == nil && res.Feasible
	})
}

// BenchmarkSweepIncrementalConcurrent fans the per-T̂_g solves over
// GOMAXPROCS workers on the shared context.
func BenchmarkSweepIncrementalConcurrent(b *testing.B) {
	benchSweep(b, func(bids []afl.Bid, cfg afl.Config) bool {
		res, err := afl.RunAuctionConcurrent(bids, cfg, 0)
		return err == nil && res.Feasible
	})
}

// BenchmarkSweepEngineReuse re-runs the sweep on one prebuilt Engine,
// isolating the steady-state cost once context construction is amortized.
func BenchmarkSweepEngineReuse(b *testing.B) {
	for _, clients := range sweepSizes {
		b.Run(fmt.Sprintf("I%d", clients), func(b *testing.B) {
			bids, cfg := sweepBids(b, clients)
			eng, err := afl.NewEngine(bids, cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !eng.Run().Feasible {
					b.Fatal("sweep infeasible")
				}
			}
		})
	}
}

// BenchmarkWorkloadGenerate measures population generation at default
// scale.
func BenchmarkWorkloadGenerate(b *testing.B) {
	p := afl.DefaultWorkloadParams()
	for i := 0; i < b.N; i++ {
		p.Seed = int64(i + 1)
		if _, err := afl.GenerateWorkload(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExactCriticalPricing compares the exact-critical payment
// paths on the benchcore payments configuration (I=200, J=5, T=10, K=4):
// eager_reference prices every candidate T̂_g (the retained
// RunAuctionEager), lazy prices only the chosen T̂_g sequentially, and
// parallel fans the per-winner bisections over GOMAXPROCS workers. The
// differential suite guarantees all three return bit-identical payments,
// so the ratios measure pure pricing work.
func BenchmarkExactCriticalPricing(b *testing.B) {
	p := afl.DefaultWorkloadParams()
	p.Clients = 200
	p.T = 10
	p.K = 4
	bids, err := afl.GenerateWorkload(p)
	if err != nil {
		b.Fatal(err)
	}
	cfg := p.Config()
	cfg.PaymentRule = afl.RuleExactCritical
	cfg.ExcludeOwnBids = true
	cfg.ReservePrice = 10 * p.CostHi
	ctx := context.Background()
	b.Run("eager_reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := core.RunAuctionEager(bids, cfg)
			if err != nil || !res.Feasible {
				b.Fatalf("eager auction failed: %v", err)
			}
		}
	})
	b.Run("lazy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := afl.Run(ctx, bids, cfg, afl.WithWorkers(1))
			if err != nil || !res.Feasible {
				b.Fatalf("lazy auction failed: %v", err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := afl.Run(ctx, bids, cfg, afl.WithWorkers(-1))
			if err != nil || !res.Feasible {
				b.Fatalf("parallel auction failed: %v", err)
			}
		}
	})
}

// BenchmarkBatchThroughput compares the two fleet runners over one fixed
// set of feasible auction instances: naive is goroutine-per-auction (each
// call paying full engine construction), batch is afl.RunBatch over the
// shared worker pool with pooled engines. One op is the whole fleet, so
// divide ns/op and allocs/op by the instance count for per-auction
// numbers; cmd/benchcore records the normalized series in BENCH_core.json.
func BenchmarkBatchThroughput(b *testing.B) {
	const m, clients = 32, 60
	ctx := context.Background()
	insts := make([]afl.Instance, 0, m)
	for seed := int64(3000); len(insts) < m; seed++ {
		p := afl.DefaultWorkloadParams()
		p.Clients = clients
		p.K = 10
		p.Seed = seed
		bids, err := afl.GenerateWorkload(p)
		if err != nil {
			b.Fatal(err)
		}
		// Keep only feasible instances so both runners do identical work.
		if res, err := afl.Run(ctx, bids, p.Config()); err != nil || !res.Feasible {
			continue
		}
		insts = append(insts, afl.Instance{Bids: bids, Cfg: p.Config()})
	}
	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			var failed atomic.Bool
			// Collect results like the batch engine does, so both fleet
			// runners hold the same live set.
			results := make([]afl.Result, len(insts))
			for j, inst := range insts {
				wg.Add(1)
				go func(j int, inst afl.Instance) {
					defer wg.Done()
					res, err := afl.Run(ctx, inst.Bids, inst.Cfg)
					if err != nil || !res.Feasible {
						failed.Store(true)
					}
					results[j] = res
				}(j, inst)
			}
			wg.Wait()
			if failed.Load() || len(results) != len(insts) {
				b.Fatal("naive fleet run failed")
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			outcomes, err := afl.RunBatch(ctx, insts)
			if err != nil {
				b.Fatal(err)
			}
			for _, oc := range outcomes {
				if oc.Err != nil || !oc.Result.Feasible {
					b.Fatalf("instance %d failed: %v", oc.Index, oc.Err)
				}
			}
		}
	})
}

// BenchmarkExactCriticalPayments measures the bisection payment rule on a
// small instance (it re-runs the allocation O(log 1/ε) times per winner).
func BenchmarkExactCriticalPayments(b *testing.B) {
	p := afl.DefaultWorkloadParams()
	p.Clients = 100
	p.T = 15
	p.K = 4
	bids, err := afl.GenerateWorkload(p)
	if err != nil {
		b.Fatal(err)
	}
	cfg := p.Config()
	cfg.PaymentRule = afl.RuleExactCritical
	cfg.ExcludeOwnBids = true
	cfg.ReservePrice = 500
	qual := core.Qualified(bids, p.T, cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := core.SolveWDP(bids, qual, p.T, cfg)
		if !res.Feasible {
			b.Fatal("WDP infeasible")
		}
	}
}
