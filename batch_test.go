package afl_test

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"reflect"
	"testing"
	"time"

	"github.com/fedauction/afl"
)

// batchTestInstances draws n differently-seeded instances of the same
// population shape.
func batchTestInstances(t testing.TB, n, clients, maxT, k int) []afl.Instance {
	t.Helper()
	insts := make([]afl.Instance, n)
	for i := range insts {
		p := afl.DefaultWorkloadParams()
		p.Seed = int64(9000 + i)
		p.Clients = clients
		p.T = maxT
		p.K = k
		bids, err := afl.GenerateWorkload(p)
		if err != nil {
			t.Fatal(err)
		}
		insts[i] = afl.Instance{Bids: bids, Cfg: p.Config()}
	}
	return insts
}

// TestRunBatchMatchesRun is the facade-level differential test required
// by the throughput redesign: for workers in {1, 4}, RunBatch outcomes
// must be bit-identical to solving each instance alone through the
// serial afl.Run entry point — winners, payments, per-T̂_g diagnostics,
// everything.
func TestRunBatchMatchesRun(t *testing.T) {
	insts := batchTestInstances(t, 10, 60, 12, 3)
	want := make([]afl.Result, len(insts))
	for i, inst := range insts {
		res, err := afl.Run(context.Background(), inst.Bids, inst.Cfg)
		if err != nil {
			t.Fatalf("serial instance %d: %v", i, err)
		}
		want[i] = res
	}
	for _, workers := range []int{1, 4} {
		out, err := afl.RunBatch(context.Background(), insts, afl.WithWorkers(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, oc := range out {
			if oc.Err != nil {
				t.Fatalf("workers=%d instance %d: %v", workers, i, oc.Err)
			}
			if oc.Index != i {
				t.Fatalf("workers=%d: outcome %d carries index %d", workers, i, oc.Index)
			}
			if !reflect.DeepEqual(oc.Result, want[i]) {
				t.Fatalf("workers=%d instance %d: RunBatch diverges from serial Run", workers, i)
			}
		}
	}
}

// TestRunBatchPaymentRuleOverride checks that WithPaymentRule applies to
// every instance of the batch without mutating the caller's slice.
func TestRunBatchPaymentRuleOverride(t *testing.T) {
	insts := batchTestInstances(t, 2, 40, 12, 3)
	out, err := afl.RunBatch(context.Background(), insts, afl.WithWorkers(1),
		afl.WithPaymentRule(afl.RulePayBid))
	if err != nil {
		t.Fatal(err)
	}
	for i, oc := range out {
		if oc.Err != nil {
			t.Fatalf("instance %d: %v", i, oc.Err)
		}
		if insts[i].Cfg.PaymentRule != afl.RuleCritical {
			t.Fatalf("instance %d: caller's Config mutated by the override", i)
		}
	}
}

// TestRunBatchGoldenTrace pins the full interleaved event stream of a
// single-worker two-instance batch on a deterministic clock: the batch
// envelope (batch_started, queue/dequeue pairs, batch_done) wrapping
// each instance's unchanged per-auction phase trace. Any drift in either
// layer's contract — or in how they interleave — shows up as a diff.
func TestRunBatchGoldenTrace(t *testing.T) {
	bids := []afl.Bid{
		{Client: 0, Price: 2, Theta: 0.5, Start: 1, End: 2, Rounds: 1},
		{Client: 1, Price: 6, Theta: 0.5, Start: 2, End: 3, Rounds: 2},
		{Client: 2, Price: 5, Theta: 0.5, Start: 1, End: 3, Rounds: 2},
	}
	cfg := afl.Config{T: 3, K: 1}
	insts := []afl.Instance{{Bids: bids, Cfg: cfg}, {Bids: bids, Cfg: cfg}}
	tr := &afl.Trace{}
	base := time.Unix(0, 0).UTC()
	calls := 0
	now := func() time.Time {
		calls++
		return base.Add(time.Duration(calls) * time.Millisecond)
	}
	out, err := afl.RunBatch(context.Background(), insts,
		afl.WithWorkers(1), afl.WithObserver(tr), afl.WithNow(now))
	if err != nil {
		t.Fatal(err)
	}
	for i, oc := range out {
		if oc.Err != nil || !oc.Result.Feasible {
			t.Fatalf("instance %d: %+v, %v", i, oc.Result.Feasible, oc.Err)
		}
	}
	const auction = `auction_started tg=3 round=2 value=3 ok=false
wdp_solved tg=2 value=7 ok=true dur=1ms
wdp_solved tg=3 value=7 ok=true dur=1ms
winner_accepted tg=2 client=0 bid=0 value=2 ok=true
payment_computed tg=2 client=0 bid=0 value=2.5 ok=true
winner_accepted tg=2 client=2 bid=2 value=5 ok=true
payment_computed tg=2 client=2 bid=2 value=5 ok=true
auction_done tg=2 value=7 ok=true dur=5ms
`
	want := `batch_started round=1 value=2 ok=false
auction_queued bid=0 value=1 ok=false
auction_queued bid=1 value=2 ok=false
auction_dequeued bid=0 value=1 ok=false
` + auction + `auction_dequeued bid=1 ok=false
` + auction + `batch_done value=2 ok=true dur=13ms
`
	if got := tr.String(); got != want {
		t.Fatalf("batch trace mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestRunBatchNilObserverAllocGuard extends the zero-cost-when-nil
// guarantee to the batch layer: an uninstrumented RunBatch must cost,
// per auction, no more than modest overhead on top of the engine_reuse
// hot-path baseline in BENCH_core.json. The pooled arenas are what make
// this hold — without them every instance would pay a full engine
// construction (the seed baseline, ~18x more allocations).
func TestRunBatchNilObserverAllocGuard(t *testing.T) {
	const m = 4
	// Mirror the benchcore I=100 configuration (T=50, K=10) so the
	// engine_reuse baseline is comparable.
	insts := batchTestInstances(t, m, 100, 50, 10)
	ctx := context.Background()
	if _, err := afl.RunBatch(ctx, insts, afl.WithWorkers(1)); err != nil {
		t.Fatal(err) // warm the shape pool
	}
	// A GC mid-measurement flushes the just-warmed shape pools and one
	// batch pays full arena rebuilds, tripping the guard spuriously;
	// take the best of a few batches so the guard measures the pooled
	// hot path (see the matching note in TestNilObserverAllocGuard).
	perBatch := minAllocsPerRun(3, 3, func() {
		if _, err := afl.RunBatch(ctx, insts, afl.WithWorkers(1)); err != nil {
			t.Error(err)
		}
	})
	perAuction := perBatch / m

	data, err := os.ReadFile("BENCH_core.json")
	if err != nil {
		t.Skipf("no BENCH_core.json baseline: %v", err)
	}
	var rep struct {
		Results []struct {
			Path        string `json:"path"`
			Clients     int    `json:"clients"`
			AllocsPerOp int64  `json:"allocs_per_op"`
		} `json:"results"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("parse BENCH_core.json: %v", err)
	}
	for _, r := range rep.Results {
		if r.Path == "engine_reuse" && r.Clients == 100 {
			// The batch path adds an arena rebuild (qualification delta
			// re-derivation into recycled capacity) per auction on top of
			// the solve itself; allow half again over the single-engine
			// baseline plus fixed scheduler overhead.
			limit := float64(r.AllocsPerOp)*1.5 + 256
			if perAuction > limit {
				t.Fatalf("nil-observer batch allocates %.0f/auction, engine_reuse baseline %d (limit %.0f)", perAuction, r.AllocsPerOp, limit)
			}
			return
		}
	}
	t.Skip("no engine_reuse baseline for this population size")
}

// TestServiceFacade exercises the root-level Service surface: options
// plumbing (WithQueue, WithWorkers), Submit/Results round-trips matching
// serial Run, and the ErrServiceClosed sentinel.
func TestServiceFacade(t *testing.T) {
	insts := batchTestInstances(t, 6, 40, 12, 3)
	svc := afl.NewService(context.Background(), afl.WithWorkers(2), afl.WithQueue(4))
	done := make(chan map[int]afl.Result)
	go func() {
		got := make(map[int]afl.Result, len(insts))
		for oc := range svc.Results() {
			if oc.Err != nil {
				t.Errorf("instance %d: %v", oc.Index, oc.Err)
			}
			got[oc.Index] = oc.Result
		}
		done <- got
	}()
	for i, inst := range insts {
		idx, err := svc.Submit(context.Background(), inst)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if idx != i {
			t.Fatalf("submit %d: sequence number %d", i, idx)
		}
	}
	svc.Close()
	got := <-done
	if len(got) != len(insts) {
		t.Fatalf("%d outcomes for %d submissions", len(got), len(insts))
	}
	for i, inst := range insts {
		want, err := afl.Run(context.Background(), inst.Bids, inst.Cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("instance %d: service result diverges from serial Run", i)
		}
	}
	if _, err := svc.Submit(context.Background(), insts[0]); !errors.Is(err, afl.ErrServiceClosed) {
		t.Fatalf("submit after close: %v, want ErrServiceClosed", err)
	}
}
