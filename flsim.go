package afl

import (
	"github.com/fedauction/afl/internal/fl"
	"github.com/fedauction/afl/internal/stats"
)

// Federated-learning simulation types: the substrate the auctioned
// schedules actually run on.
type (
	// Dataset is a labeled design matrix for binary classification.
	Dataset = fl.Dataset
	// FLClient is one federated participant (local shard, promised θ,
	// learning rate, optional dropout probability).
	FLClient = fl.Client
	// TrainConfig drives a FedAvg run.
	TrainConfig = fl.TrainConfig
	// TrainResult is the outcome of Train.
	TrainResult = fl.TrainResult
	// RoundStats records one global iteration of training.
	RoundStats = fl.RoundStats
	// SyntheticOptions configures GenerateSynthetic.
	SyntheticOptions = fl.SyntheticOptions
	// MultiDataset is a labeled design matrix for multiclass tasks.
	MultiDataset = fl.MultiDataset
	// MultiSyntheticOptions configures GenerateSyntheticMulti.
	MultiSyntheticOptions = fl.MultiSyntheticOptions
	// MultiFLClient is a federated participant on a multiclass shard.
	MultiFLClient = fl.MultiClient
)

// NewRNG returns the seeded random source used across the library; equal
// seeds reproduce workloads, datasets and simulations exactly.
func NewRNG(seed int64) *stats.RNG { return stats.NewRNG(seed) }

// GenerateSynthetic draws a logistic-regression task and its ground-truth
// weights.
func GenerateSynthetic(rng *stats.RNG, opts SyntheticOptions) (Dataset, []float64) {
	return fl.GenerateSynthetic(rng, opts)
}

// PartitionIID splits a dataset into n near-equal client shards.
func PartitionIID(rng *stats.RNG, ds Dataset, n int) []Dataset {
	return fl.PartitionIID(rng, ds, n)
}

// PartitionNonIID splits a dataset into n label-skewed client shards.
func PartitionNonIID(rng *stats.RNG, ds Dataset, n int, skew float64) []Dataset {
	return fl.PartitionNonIID(rng, ds, n, skew)
}

// Train runs FedAvg over the scheduled clients: schedule[r] lists the
// client IDs participating in global iteration r+1, exactly as an auction
// solution prescribes.
func Train(clients map[int]*FLClient, schedule [][]int, eval Dataset, cfg TrainConfig) (TrainResult, error) {
	return fl.Train(clients, schedule, eval, cfg)
}

// ScheduleFromSlots converts per-winner slot lists into the per-round
// client-ID lists Train expects.
func ScheduleFromSlots(rounds int, slots map[int][]int) [][]int {
	return fl.ScheduleFromSlots(rounds, slots)
}

// ScheduleFromResult extracts the training schedule from an auction
// outcome: winners are keyed by client ID.
func ScheduleFromResult(res Result) [][]int {
	slots := make(map[int][]int, len(res.Winners))
	for _, w := range res.Winners {
		slots[w.Bid.Client] = w.Slots
	}
	return fl.ScheduleFromSlots(res.Tg, slots)
}

// ModelAccuracy returns the classification accuracy of weights on a
// dataset.
func ModelAccuracy(weights []float64, ds Dataset) float64 { return fl.Accuracy(weights, ds) }

// ModelLoss returns the L2-regularized logistic loss.
func ModelLoss(weights []float64, ds Dataset, l2 float64) float64 { return fl.Loss(weights, ds, l2) }

// GenerateSyntheticMulti draws a multiclass softmax task and its
// ground-truth flattened weights.
func GenerateSyntheticMulti(rng *stats.RNG, opts MultiSyntheticOptions) (MultiDataset, []float64) {
	return fl.GenerateSyntheticMulti(rng, opts)
}

// PartitionMultiNonIID splits a multiclass dataset into class-skewed
// client shards.
func PartitionMultiNonIID(rng *stats.RNG, ds MultiDataset, n int, skew float64) []MultiDataset {
	return fl.PartitionMultiNonIID(rng, ds, n, skew)
}

// TrainMulti runs FedAvg over multiclass clients on an auctioned
// schedule.
func TrainMulti(clients map[int]*MultiFLClient, schedule [][]int, eval MultiDataset, cfg TrainConfig) (TrainResult, error) {
	return fl.TrainMulti(clients, schedule, eval, cfg)
}

// SoftmaxModelAccuracy returns the argmax accuracy of flattened softmax
// weights.
func SoftmaxModelAccuracy(weights []float64, ds MultiDataset) float64 {
	return fl.SoftmaxAccuracy(weights, ds)
}
