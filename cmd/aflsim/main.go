// Command aflsim regenerates the paper's evaluation figures (Fig. 3-9).
// Each figure is printed as an ASCII chart with measured headline notes
// and written as a CSV series for external plotting.
//
// Usage:
//
//	aflsim -fig all                 # every figure at paper scale
//	aflsim -fig 5 -quick            # one figure at quick scale
//	aflsim -fig 3,4 -out results/   # choose figures and CSV directory
//	aflsim -seed 7 -trials 5        # reproducibility and averaging
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/fedauction/afl/internal/experiments"
)

func main() {
	figFlag := flag.String("fig", "all", "figures to run: all, none, or a comma list like 3,5,9")
	ablFlag := flag.String("ablation", "none", "ablations to run: all, none, or a comma list (payment-rules, schedule-rule, redundancy, lazy-vs-naive)")
	seed := flag.Int64("seed", 1, "base RNG seed")
	trials := flag.Int("trials", 0, "trials per data point (0 = default)")
	quick := flag.Bool("quick", false, "small instances for a fast pass")
	workers := flag.Int("workers", 0, "trial-loop worker pool width (0 = GOMAXPROCS); figures are identical for every setting")
	out := flag.String("out", "results", "directory for CSV output (empty to skip)")
	width := flag.Int("width", 70, "chart width")
	height := flag.Int("height", 16, "chart height")
	list := flag.Bool("list", false, "list available figures and ablations, then exit")
	flag.Parse()

	if *list {
		fmt.Println("figures:")
		for _, id := range experiments.IDs() {
			fmt.Printf("  %s\n", id)
		}
		fmt.Println("ablations:")
		for _, id := range experiments.AblationIDs() {
			fmt.Printf("  %s\n", id)
		}
		return
	}

	ids, err := selectFigures(*figFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	ablations, err := selectAblations(*ablFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	opts := experiments.Options{Seed: *seed, Trials: *trials, Quick: *quick, Workers: *workers}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "create %s: %v\n", *out, err)
			os.Exit(1)
		}
	}
	run := func(id string, runner experiments.Runner) {
		start := time.Now()
		fig := runner(opts)
		fmt.Printf("=== %s: %s (%.1fs) ===\n", strings.ToUpper(fig.ID), fig.Title, time.Since(start).Seconds())
		fmt.Print(fig.Chart.Render(*width, *height))
		for _, n := range fig.Notes {
			fmt.Printf("  note: %s\n", n)
		}
		if *out != "" {
			path := filepath.Join(*out, fig.ID+".csv")
			if err := os.WriteFile(path, []byte(fig.Chart.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "write %s: %v\n", path, err)
				os.Exit(1)
			}
			fmt.Printf("  csv: %s\n", path)
		}
		fmt.Println()
	}
	for _, id := range ids {
		run(id, experiments.Registry[id])
	}
	for _, id := range ablations {
		run(id, experiments.Ablations[id])
	}
}

func selectFigures(spec string) ([]string, error) {
	switch spec {
	case "all", "":
		return experiments.IDs(), nil
	case "none":
		return nil, nil
	}
	var ids []string
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		part = strings.TrimPrefix(part, "fig")
		id := "fig" + part
		if _, ok := experiments.Registry[id]; !ok {
			return nil, fmt.Errorf("unknown figure %q (have %s)", part, strings.Join(experiments.IDs(), ", "))
		}
		ids = append(ids, id)
	}
	return ids, nil
}

func selectAblations(spec string) ([]string, error) {
	switch spec {
	case "all":
		return experiments.AblationIDs(), nil
	case "none", "":
		return nil, nil
	}
	var ids []string
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if _, ok := experiments.Ablations[part]; !ok {
			return nil, fmt.Errorf("unknown ablation %q (have %s)", part, strings.Join(experiments.AblationIDs(), ", "))
		}
		ids = append(ids, part)
	}
	return ids, nil
}
