package main

import (
	"testing"

	"github.com/fedauction/afl/internal/experiments"
)

func TestSelectFigures(t *testing.T) {
	all, err := selectFigures("all")
	if err != nil || len(all) != len(experiments.IDs()) {
		t.Fatalf("all = %v, %v", all, err)
	}
	none, err := selectFigures("none")
	if err != nil || none != nil {
		t.Fatalf("none = %v, %v", none, err)
	}
	got, err := selectFigures("3, fig5 ,9")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"fig3", "fig5", "fig9"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if _, err := selectFigures("42"); err == nil {
		t.Fatal("unknown figure must error")
	}
}

func TestSelectAblations(t *testing.T) {
	all, err := selectAblations("all")
	if err != nil || len(all) != len(experiments.AblationIDs()) {
		t.Fatalf("all = %v, %v", all, err)
	}
	none, err := selectAblations("none")
	if err != nil || none != nil {
		t.Fatalf("none = %v, %v", none, err)
	}
	got, err := selectAblations("redundancy, payment-rules")
	if err != nil || len(got) != 2 || got[0] != "redundancy" || got[1] != "payment-rules" {
		t.Fatalf("got %v, %v", got, err)
	}
	if _, err := selectAblations("bogus"); err == nil {
		t.Fatal("unknown ablation must error")
	}
}
