package main

import (
	"bytes"
	"testing"

	"github.com/fedauction/afl"
)

// FuzzBidJSON feeds arbitrary bytes through the CLI's input path: JSON
// decoding followed by bid validation. Neither stage may panic, and any
// population that survives both must run through the auction without
// panicking — the same guarantee the binary gives untrusted bid files.
func FuzzBidJSON(f *testing.F) {
	f.Add([]byte(`[]`))
	f.Add([]byte(`[{"client":0,"price":2,"theta":0.5,"start":1,"end":2,"rounds":1}]`))
	f.Add([]byte(`[{"client":0,"price":2,"theta":0.5,"start":2,"end":1,"rounds":0}]`))
	f.Add([]byte(`[{"theta":1e308,"start":-5,"end":9999999,"rounds":-1}]`))
	f.Add([]byte(`{"not":"an array"}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		bids, err := afl.ReadBidsJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		const maxT, k = 16, 2
		if err := afl.ValidateBids(bids, maxT, k); err != nil {
			return
		}
		res, err := afl.RunAuction(bids, afl.Config{T: maxT, K: k})
		if err != nil {
			return
		}
		if err := afl.CheckSolution(bids, res, afl.Config{T: maxT, K: k}); err != nil {
			t.Fatalf("decoded bids produced an invalid solution: %v", err)
		}
	})
}
