// Command aflauction runs a single A_FL auction. Bids come either from a
// JSON file (-input) or from the built-in §VII-A workload generator
// (-clients/-bids/-seed). The outcome is printed as a human-readable
// summary and, with -json, as machine-readable JSON on stdout.
//
// Input file format: a JSON array of bid objects,
//
//	[{"Client":0,"Price":12.5,"Theta":0.5,"Start":1,"End":6,
//	  "Rounds":2,"CompTime":5,"CommTime":10}, ...]
//
// Examples:
//
//	aflauction -clients 200 -T 20 -K 5
//	aflauction -input bids.json -T 50 -K 20 -rule exact
//	aflauction -clients 100 -json > result.json
//	aflauction -clients 500 -workers -1 -trace -metrics -cpuprofile cpu.pb.gz
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/fedauction/afl"
)

func main() {
	input := flag.String("input", "", "bids file, .json or .csv (empty: generate a workload)")
	dump := flag.String("dump", "", "write the bid population to this file (.json or .csv) before running")
	clients := flag.Int("clients", 200, "generated workload: number of clients")
	bidsPer := flag.Int("bids", 5, "generated workload: bids per client")
	seed := flag.Int64("seed", 1, "generated workload: RNG seed")
	maxT := flag.Int("T", 50, "maximum number of global iterations")
	k := flag.Int("K", 20, "participants required per global iteration")
	tmax := flag.Float64("tmax", 60, "per-iteration time budget t_max (0 disables)")
	rule := flag.String("rule", "critical", "payment rule: critical, exact, paybid")
	reserve := flag.Float64("reserve", 0, "reserve price (0 disables)")
	jsonOut := flag.Bool("json", false, "emit the full result as JSON on stdout")
	simulate := flag.Bool("simulate", false, "after the auction, simulate wall-clock round execution")
	jitter := flag.Float64("jitter", 0.1, "timing jitter for -simulate (σ of log round time)")
	workers := flag.Int("workers", 1, "concurrent WDP workers (1: sequential, -1: GOMAXPROCS)")
	trace := flag.Bool("trace", false, "print the structured phase trace to stderr")
	metrics := flag.Bool("metrics", false, "print the metrics exposition to stderr")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file at exit")
	flag.Parse()

	if *cpuprofile != "" || *memprofile != "" {
		stop, err := afl.StartProfiles(*cpuprofile, *memprofile)
		if err != nil {
			fatalf("profiles: %v", err)
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintln(os.Stderr, "aflauction: profiles:", err)
			}
		}()
	}

	cfg := afl.Config{T: *maxT, K: *k, TMax: *tmax, ReservePrice: *reserve}
	switch *rule {
	case "critical":
		cfg.PaymentRule = afl.RuleCritical
	case "exact":
		cfg.PaymentRule = afl.RuleExactCritical
		cfg.ExcludeOwnBids = true
	case "paybid":
		cfg.PaymentRule = afl.RulePayBid
	default:
		fatalf("unknown payment rule %q", *rule)
	}

	var bids []afl.Bid
	if *input != "" {
		f, err := os.Open(*input)
		if err != nil {
			fatalf("open %s: %v", *input, err)
		}
		defer f.Close()
		if strings.HasSuffix(*input, ".csv") {
			bids, err = afl.ReadBidsCSV(f)
		} else {
			bids, err = afl.ReadBidsJSON(f)
		}
		if err != nil {
			fatalf("parse %s: %v", *input, err)
		}
	} else {
		p := afl.DefaultWorkloadParams()
		p.Clients = *clients
		p.BidsPerUser = *bidsPer
		p.T = *maxT
		p.K = *k
		p.TMax = *tmax
		p.Seed = *seed
		var err error
		bids, err = afl.GenerateWorkload(p)
		if err != nil {
			fatalf("generate workload: %v", err)
		}
	}
	if err := afl.ValidateBids(bids, cfg.T, cfg.K); err != nil {
		fatalf("invalid bids: %v", err)
	}
	if *dump != "" {
		f, err := os.Create(*dump)
		if err != nil {
			fatalf("create %s: %v", *dump, err)
		}
		if strings.HasSuffix(*dump, ".csv") {
			err = afl.WriteBidsCSV(f, bids)
		} else {
			err = afl.WriteBidsJSON(f, bids)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatalf("dump %s: %v", *dump, err)
		}
	}

	var tr *afl.Trace
	var met *afl.Metrics
	var observers []afl.Observer
	if *trace {
		tr = &afl.Trace{}
		observers = append(observers, tr)
	}
	if *metrics {
		met = afl.NewMetrics(nil)
		observers = append(observers, met)
	}
	opts := []afl.Option{afl.WithWorkers(*workers)}
	if o := afl.MultiObserver(observers...); o != nil {
		opts = append(opts, afl.WithObserver(o))
	}
	res, err := afl.Run(context.Background(), bids, cfg, opts...)
	if err != nil && !errors.Is(err, afl.ErrInfeasible) {
		fatalf("auction: %v", err)
	}
	if res.Feasible {
		if err := afl.CheckSolution(bids, res, cfg); err != nil {
			fatalf("solution failed verification: %v", err)
		}
	}
	if tr != nil {
		fmt.Fprint(os.Stderr, tr.String())
	}
	if met != nil {
		fmt.Fprint(os.Stderr, met.Registry().String())
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(auctionOutput(res)); err != nil {
			fatalf("encode: %v", err)
		}
		return
	}
	fmt.Print(res.String())
	if res.Feasible {
		fmt.Printf("total payments: %.2f   certificate: cost ≤ %.3f × optimal, optimal ≥ %.2f\n",
			res.TotalPayment(), res.Dual.RatioBound, res.Dual.Bound())
	}
	if *simulate && res.Feasible {
		sim, err := afl.SimulateRounds(res, cfg.K, afl.RoundSimOptions{
			TMax: cfg.TMax, Jitter: *jitter, Seed: *seed,
		})
		if err != nil {
			fatalf("simulate: %v", err)
		}
		fmt.Printf("execution simulation: %s\n", sim)
	}
}

// output is the stable JSON shape of an auction result.
type output struct {
	Feasible   bool         `json:"feasible"`
	Tg         int          `json:"tg"`
	Cost       float64      `json:"cost"`
	Payments   float64      `json:"payments"`
	RatioBound float64      `json:"ratio_bound"`
	DualBound  float64      `json:"dual_lower_bound"`
	Winners    []winnerJSON `json:"winners"`
}

type winnerJSON struct {
	Client   int     `json:"client"`
	BidIndex int     `json:"bid_index"`
	Price    float64 `json:"price"`
	Payment  float64 `json:"payment"`
	Slots    []int   `json:"slots"`
}

func auctionOutput(res afl.Result) output {
	out := output{
		Feasible:   res.Feasible,
		Tg:         res.Tg,
		Cost:       res.Cost,
		Payments:   res.TotalPayment(),
		RatioBound: res.Dual.RatioBound,
		DualBound:  res.Dual.Objective,
	}
	for _, w := range res.Winners {
		out.Winners = append(out.Winners, winnerJSON{
			Client: w.Bid.Client, BidIndex: w.Bid.Index,
			Price: w.Bid.Price, Payment: w.Payment, Slots: w.Slots,
		})
	}
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
