package main

import (
	"encoding/json"
	"testing"

	"github.com/fedauction/afl"
)

func TestAuctionOutputJSON(t *testing.T) {
	p := afl.DefaultWorkloadParams()
	p.Clients = 60
	p.T = 10
	p.K = 3
	bids, err := afl.GenerateWorkload(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := afl.RunAuction(bids, p.Config())
	if err != nil || !res.Feasible {
		t.Fatalf("auction failed: %v", err)
	}
	out := auctionOutput(res)
	if !out.Feasible || out.Tg != res.Tg || out.Cost != res.Cost {
		t.Fatalf("output mismatch: %+v vs %+v", out, res)
	}
	if len(out.Winners) != len(res.Winners) {
		t.Fatalf("winners %d vs %d", len(out.Winners), len(res.Winners))
	}
	data, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	var round output
	if err := json.Unmarshal(data, &round); err != nil {
		t.Fatal(err)
	}
	if round.Cost != out.Cost || len(round.Winners) != len(out.Winners) {
		t.Fatal("JSON round trip lost data")
	}
}

func TestBidJSONRoundTrip(t *testing.T) {
	// The documented -input format is a plain JSON array of afl.Bid.
	in := []afl.Bid{{
		Client: 0, Price: 12.5, Theta: 0.5, Start: 1, End: 6,
		Rounds: 2, CompTime: 5, CommTime: 10,
	}}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var got []afl.Bid
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != in[0] {
		t.Fatalf("round trip: %+v", got)
	}
}
