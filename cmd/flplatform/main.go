// Command flplatform runs the networked auction marketplace over real TCP
// sockets in six modes:
//
//	flplatform -mode demo                  # server + agents in one process
//	flplatform -mode server -addr :7001 -agents 6
//	flplatform -mode client -addr host:7001 -id 3
//	flplatform -mode chaos -seed 42 -drop 0.1 -crash 2:3
//	flplatform -mode market -jobs 64 -clients 60 -workers 4 -queue 8
//	flplatform -mode marketd -addr :7080 -wal /var/lib/afl -rate 5 -burst 10
//
// The server announces the FL job, collects sealed bids, runs A_FL,
// drives the training rounds over the winning schedule, and settles
// payments; each client process holds a private synthetic shard and bids
// from its own resource profile. Chaos mode replays one deterministic
// fault schedule on a virtual clock and checks the session invariants.
// Market mode exercises the cross-auction throughput layer: it streams
// -jobs independently drawn auction instances (one per hypothetical FL
// job) through a long-lived afl.Service with a bounded submission queue,
// and reports the realized auctions/sec; combine with -metrics or -pprof
// to watch the queue-depth gauge and per-auction latency histogram.
// Marketd mode is the durable daemon: a long-lived HTTP/JSON market
// whose submissions, outcomes and payments are logged to -wal and
// replayed bit-identically on restart, with per-client token-bucket
// rate limiting (-rate/-burst) and queue-depth admission control
// (-maxpending) at the edge. The fast-path knobs shape the WAL:
// -group-commit (with -sync-interval) coalesces concurrent commits
// into shared fsyncs, -checkpoint-every and -segment-bytes bound
// restart replay to the post-checkpoint tail, and -retain bounds the
// in-memory outcome history (pruned reads answer 410). At startup the
// daemon prints the WAL size, segment count, last checkpoint and tail
// replayed, warning when the tail exceeds -tail-warn; the same figures
// are served live under GET /v1/stats.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/ on the -pprof server
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"github.com/fedauction/afl"
	"github.com/fedauction/afl/internal/chaos"
)

// Session instrumentation shared by the server-side modes; built once in
// main from the observability flags.
var (
	traceRec  *afl.Trace
	metRec    *afl.Metrics
	observer  afl.Observer
	wantTrace bool
	wantMet   bool
)

func main() {
	mode := flag.String("mode", "demo", "demo, server, client, chaos, market, or marketd")
	addr := flag.String("addr", "127.0.0.1:7001", "listen/dial address")
	agents := flag.Int("agents", 6, "number of agents (demo/server/chaos)")
	id := flag.Int("id", 0, "client id (client mode)")
	seed := flag.Int64("seed", 5, "RNG seed")
	maxT := flag.Int("T", 8, "maximum global iterations")
	k := flag.Int("K", 2, "participants per iteration")
	dim := flag.Int("dim", 6, "model dimension")
	retries := flag.Int("retries", 1, "attempts per expected client update (server/demo/chaos)")
	backoff := flag.Duration("backoff", 100*time.Millisecond, "initial retry backoff, doubled per attempt")
	drop := flag.Float64("drop", 0, "chaos: per-message drop probability")
	delay := flag.Float64("delay", 0, "chaos: per-message delay probability")
	dup := flag.Float64("dup", 0, "chaos: per-message duplication probability")
	crash := flag.String("crash", "", "chaos: comma-separated client:round crash points, e.g. 2:3,5:1")
	jobs := flag.Int("jobs", 64, "market: number of auction instances to stream through the service")
	clients := flag.Int("clients", 60, "market: bidders per auction instance")
	workers := flag.Int("workers", 0, "market/marketd: service worker pool width (0 = GOMAXPROCS)")
	queueN := flag.Int("queue", 0, "market/marketd: submission queue bound (0 = twice the workers)")
	walDir := flag.String("wal", "", "marketd: durability directory for the event log (empty = volatile)")
	syncEvery := flag.Int("sync-every", 1, "marketd: fsync the event log every n appends")
	groupCommit := flag.Bool("group-commit", false, "marketd: coalesce concurrent commits into shared fsyncs")
	syncInterval := flag.Duration("sync-interval", 0, "marketd: group-commit linger to collect larger fsync batches (0 = sync when free)")
	checkpointEvery := flag.Int("checkpoint-every", 0, "marketd: checkpoint+prune the WAL every n committed auctions (0 = never)")
	segmentBytes := flag.Int64("segment-bytes", 0, "marketd: rotate the WAL segment past this size (0 = never)")
	retain := flag.Int("retain", 0, "marketd: keep at most n folded outcomes; older reads return 410 (0 = all)")
	tailWarn := flag.Int("tail-warn", 10000, "marketd: warn at startup when recovery replayed more than n tail records")
	rate := flag.Float64("rate", 0, "marketd: per-client sustained submissions/sec (0 = unlimited)")
	burst := flag.Int("burst", 0, "marketd: per-client burst size (0 = ceil(rate))")
	maxPending := flag.Int("maxpending", 0, "marketd: reject submissions past this pending depth (0 = unbounded)")
	trace := flag.Bool("trace", false, "print the session's phase trace to stderr at exit")
	metrics := flag.Bool("metrics", false, "print the metrics exposition to stderr at exit")
	pprofAddr := flag.String("pprof", "", "serve /debug/pprof/ and /metrics on this address (e.g. :6060)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file at exit")
	flag.Parse()

	if *cpuprofile != "" || *memprofile != "" {
		stop, err := afl.StartProfiles(*cpuprofile, *memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "profiles:", err)
			os.Exit(1)
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintln(os.Stderr, "flplatform: profiles:", err)
			}
		}()
	}
	wantTrace, wantMet = *trace, *metrics
	setupObserver(*pprofAddr)

	retry := afl.RetryPolicy{Attempts: *retries, Backoff: *backoff}
	switch *mode {
	case "demo":
		runDemo(*agents, *seed, *maxT, *k, *dim, retry)
	case "server":
		runServer(*addr, *agents, *seed, *maxT, *k, *dim, retry)
	case "client":
		runClient(*addr, *id, *seed, *maxT, *dim)
	case "chaos":
		runChaos(*agents, *seed, *maxT, *k, *dim, retry, *drop, *delay, *dup, *crash)
	case "market":
		runMarket(*jobs, *clients, *workers, *queueN, *seed)
	case "marketd":
		runMarketd(marketdFlags{
			addr: *addr, walDir: *walDir, workers: *workers, queue: *queueN,
			syncEvery: *syncEvery, groupCommit: *groupCommit, syncInterval: *syncInterval,
			checkpointEvery: *checkpointEvery, segmentBytes: *segmentBytes, retain: *retain,
			tailWarn: *tailWarn, rate: *rate, burst: *burst, maxPending: *maxPending,
		})
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}
	dumpInstruments()
}

// setupObserver builds the shared observer from the observability flags:
// a Trace for -trace, a Metrics registry for -metrics and/or the -pprof
// HTTP server (which serves it at /metrics next to /debug/pprof/).
func setupObserver(pprofAddr string) {
	var list []afl.Observer
	if wantTrace {
		traceRec = &afl.Trace{}
		list = append(list, traceRec)
	}
	if wantMet || pprofAddr != "" {
		metRec = afl.NewMetrics(nil)
		list = append(list, metRec)
	}
	if pprofAddr != "" {
		http.Handle("/metrics", metRec.Registry())
		go func() {
			if err := http.ListenAndServe(pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "pprof server:", err)
			}
		}()
	}
	observer = afl.MultiObserver(list...)
}

// dumpInstruments prints the collected trace and metrics to stderr.
func dumpInstruments() {
	if traceRec != nil {
		fmt.Fprint(os.Stderr, traceRec.String())
	}
	if metRec != nil && wantMet {
		fmt.Fprint(os.Stderr, metRec.Registry().String())
	}
}

func newServer(seed int64, agents, maxT, k, dim int, retry afl.RetryPolicy) (*afl.Server, afl.Dataset) {
	rng := afl.NewRNG(seed)
	eval, _ := afl.GenerateSynthetic(rng, afl.SyntheticOptions{Samples: 1000, Dim: dim})
	job := afl.Job{Name: "flplatform", T: maxT, K: k, TMax: 60, Dim: dim}
	return afl.NewServer(afl.ServerConfig{
		Job: job, L2: 0.01, Eval: eval, RecvTimeout: 10 * time.Second, Retry: retry,
		Observer: observer,
	}), eval
}

func newAgent(id int, seed int64, maxT, dim int) *afl.Agent {
	// Derive the agent's private shard and resource profile from its own
	// seed so server and client processes need not share state.
	rng := afl.NewRNG(seed + int64(id)*1000003)
	data, _ := afl.GenerateSynthetic(rng, afl.SyntheticOptions{Samples: 300, Dim: dim})
	theta := rng.FloatRange(0.4, 0.7)
	start := rng.IntRange(1, maxT/2)
	end := rng.IntRange(start+1, maxT)
	rounds := rng.IntRange(1, end-start)
	return &afl.Agent{
		ID: id,
		Bids: []afl.Bid{{
			Price: rng.FloatRange(10, 40), Theta: theta,
			Start: start, End: end, Rounds: rounds,
			CompTime: rng.FloatRange(5, 10), CommTime: rng.FloatRange(10, 15),
		}},
		Learner:     &afl.FLClient{ID: id, Data: data, Theta: theta, LR: 0.4},
		L2:          0.01,
		RecvTimeout: 30 * time.Second,
	}
}

func printReport(report afl.SessionReport) {
	fmt.Printf("auction: feasible=%v T_g=%d cost=%.1f winners=%d bidders=%d\n",
		report.Auction.Feasible, report.Auction.Tg, report.Auction.Cost,
		len(report.Auction.Winners), report.ClientsBid)
	for _, r := range report.Rounds {
		fmt.Printf("  round %d: responded %v failed %v accuracy %.3f\n",
			r.Iteration, r.Responded, r.Failed, r.Accuracy)
	}
	fmt.Println("ledger:")
	fmt.Print(report.Ledger.String())
}

func runServer(addr string, agents int, seed int64, maxT, k, dim int, retry afl.RetryPolicy) {
	server, _ := newServer(seed, agents, maxT, k, dim, retry)
	conns := make(map[int]afl.Conn, agents)
	var mu sync.Mutex
	done := make(chan struct{})
	count := 0
	boundAddr, stop, err := afl.Listen(addr, agents, func(c afl.Conn) {
		mu.Lock()
		conns[count] = c
		count++
		if count == agents {
			close(done)
		}
		mu.Unlock()
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stop()
	fmt.Printf("listening on %s, waiting for %d agents\n", boundAddr, agents)
	<-done
	report, err := server.RunSession(conns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	printReport(report)
}

func runClient(addr string, id int, seed int64, maxT, dim int) {
	conn, err := afl.Dial(addr, 5*time.Second)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	agent := newAgent(id, seed, maxT, dim)
	report, err := agent.Run(conn)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("agent %d: won=%v rounds=%d paid=%.2f %s\n",
		id, report.Won, report.RoundsRun, report.Paid, report.PayReason)
}

// parseCrash turns "2:3,5:1" into {2: 3, 5: 1} (client → crash round).
func parseCrash(spec string) (map[int]int, error) {
	if spec == "" {
		return nil, nil
	}
	out := make(map[int]int)
	for _, part := range strings.Split(spec, ",") {
		cr := strings.SplitN(part, ":", 2)
		if len(cr) != 2 {
			return nil, fmt.Errorf("crash point %q is not client:round", part)
		}
		client, err := strconv.Atoi(strings.TrimSpace(cr[0]))
		if err != nil {
			return nil, fmt.Errorf("crash point %q: %w", part, err)
		}
		round, err := strconv.Atoi(strings.TrimSpace(cr[1]))
		if err != nil {
			return nil, fmt.Errorf("crash point %q: %w", part, err)
		}
		out[client] = round
	}
	return out, nil
}

func runChaos(agents int, seed int64, maxT, k, dim int, retry afl.RetryPolicy, drop, delay, dup float64, crashSpec string) {
	crash, err := parseCrash(crashSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	scenario := chaos.Scenario{
		Seed:   seed,
		Agents: agents,
		Job:    afl.Job{Name: "flplatform-chaos", T: maxT, K: k, TMax: 60, Dim: dim},
		Faults: chaos.FaultPlan{
			Seed: seed, Drop: drop, Delay: delay, Duplicate: dup, Crash: crash,
		},
		Retry:    retry,
		Observer: observer,
	}
	out, err := chaos.Run(scenario)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	printReport(out.Report)
	for _, rep := range out.Report.Repairs {
		fmt.Printf("repair at round %d: dropped %v, repaired=%v promoted=%v pay=%.2f\n",
			rep.Round, rep.Dropped, rep.Repaired, rep.Promoted, rep.Payments)
	}
	for i, r := range out.AgentReports {
		fmt.Printf("agent %d: won=%v rounds=%d paid=%.2f %s\n",
			i, r.Won, r.RoundsRun, r.Paid, r.PayReason)
	}
	if err := chaos.Check(scenario, out); err != nil {
		fmt.Fprintf(os.Stderr, "invariant violation: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("all session invariants hold")
}

// runMarket streams jobs auction instances through a long-lived
// afl.Service — the marketplace daemon's serving loop, minus the
// network: a producer submits one sealed-bid population per FL job
// (blocking when the bounded queue fills, which is the backpressure), a
// consumer drains outcomes, and the run reports the realized throughput.
// SIGINT/SIGTERM stops the producer, not the solver: already-submitted
// auctions are drained and the partial results printed before exit.
func runMarket(jobs, clients, workers, queue int, seed int64) {
	// The service lives on the background context; only the submission
	// loop is bound to the signal, so an interrupt stops new work while
	// Close drains everything already accepted.
	svc := afl.NewService(context.Background(),
		afl.WithWorkers(workers), afl.WithQueue(queue), afl.WithObserver(observer))
	submitCtx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	var wg sync.WaitGroup
	wg.Add(1)
	var solved, feasible int
	var infeasible []int
	go func() {
		defer wg.Done()
		for o := range svc.Results() {
			solved++
			if o.Err == nil {
				feasible++
			} else {
				infeasible = append(infeasible, o.Index)
			}
		}
	}()

	start := time.Now()
	submitted := 0
	for i := 0; i < jobs; i++ {
		p := afl.DefaultWorkloadParams()
		p.Clients = clients
		// The paper's K=20 needs a deep bid pool; scale the coverage
		// requirement down with the population so small demo markets stay
		// mostly feasible (infeasible jobs are reported, not fatal).
		if k := clients / 20; k < p.K {
			p.K = max(k, 2)
		}
		p.Seed = seed + int64(i)*1000003
		bids, err := afl.GenerateWorkload(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if _, err := svc.Submit(submitCtx, afl.Instance{Bids: bids, Cfg: p.Config()}); err != nil {
			if submitCtx.Err() != nil {
				fmt.Fprintf(os.Stderr, "market: interrupted after %d submissions, draining\n", submitted)
				break
			}
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		submitted++
	}
	svc.Close()
	wg.Wait()
	elapsed := time.Since(start)

	fmt.Printf("market: %d auctions solved (%d feasible) in %v — %.1f auctions/s\n",
		solved, feasible, elapsed.Round(time.Millisecond),
		float64(solved)/elapsed.Seconds())
	for _, idx := range infeasible {
		fmt.Printf("  job %d: no feasible schedule at this K\n", idx)
	}
}

// marketdFlags carries the -mode marketd flag set into runMarketd.
type marketdFlags struct {
	addr, walDir      string
	workers, queue    int
	syncEvery         int
	groupCommit       bool
	syncInterval      time.Duration
	checkpointEvery   int
	segmentBytes      int64
	retain            int
	tailWarn          int
	rate              float64
	burst, maxPending int
}

// runMarketd serves the durable market daemon: an HTTP/JSON API over an
// afl.Market whose every acknowledged submission survives process death
// (with -wal) and is restored or re-solved on the next start. The
// daemon runs until SIGINT/SIGTERM, then shuts the listener down,
// drains in-flight auctions, and syncs the log.
func runMarketd(f marketdFlags) {
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	opts := []afl.Option{
		afl.WithDurability(f.walDir),
		afl.WithWorkers(f.workers), afl.WithQueue(f.queue),
		afl.WithSyncEvery(f.syncEvery),
		afl.WithCheckpointEvery(f.checkpointEvery),
		afl.WithSegmentBytes(f.segmentBytes),
		afl.WithRetainOutcomes(f.retain),
		afl.WithRateLimit(f.rate, f.burst),
		afl.WithMaxPending(f.maxPending),
		afl.WithObserver(observer),
	}
	if f.groupCommit {
		opts = append(opts, afl.WithGroupCommit(f.syncInterval))
	}
	m, err := afl.OpenMarket(context.Background(), opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	next, committed, pending, _ := m.Counts()
	if f.walDir != "" {
		fmt.Printf("marketd: recovered %d committed outcomes, %d pending re-queued (%d faults absorbed), next seq %d\n",
			committed, pending, m.RecoveredFaults(), next)
		info := m.WALInfo()
		fmt.Printf("marketd: wal %d bytes in %d segments, last checkpoint seq %d, tail replayed %d records\n",
			info.Bytes, info.Segments, info.LastCheckpointSeq, info.TailReplayed)
		if f.tailWarn > 0 && info.TailReplayed > f.tailWarn {
			fmt.Fprintf(os.Stderr, "marketd: WARNING: recovery replayed %d tail records (> %d); enable or tighten -checkpoint-every to bound restart time\n",
				info.TailReplayed, f.tailWarn)
		}
	}

	srv := &http.Server{Addr: f.addr, Handler: afl.MarketHandler(m)}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Printf("marketd: serving on %s (wal=%q rate=%g burst=%d maxpending=%d group-commit=%v checkpoint-every=%d)\n",
		f.addr, f.walDir, f.rate, f.burst, f.maxPending, f.groupCommit, f.checkpointEvery)

	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "marketd: signal received, draining")
	case <-m.Dead():
		fmt.Fprintln(os.Stderr, "marketd: market died")
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "marketd:", err)
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	srv.Shutdown(shutCtx)
	if err := m.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "marketd: close:", err)
		os.Exit(1)
	}
	_, committed, _, _ = m.Counts()
	fmt.Printf("marketd: drained; %d outcomes committed\n", committed)
}

func runDemo(agents int, seed int64, maxT, k, dim int, retry afl.RetryPolicy) {
	server, _ := newServer(seed, agents, maxT, k, dim, retry)
	conns := make(map[int]afl.Conn, agents)
	reports := make([]afl.AgentReport, agents)
	var wg sync.WaitGroup
	for i := 0; i < agents; i++ {
		sc, ac := afl.Pipe(64)
		conns[i] = sc
		agent := newAgent(i, seed, maxT, dim)
		wg.Add(1)
		go func(i int, a *afl.Agent, c afl.Conn) {
			defer wg.Done()
			r, err := a.Run(c)
			if err != nil {
				fmt.Fprintf(os.Stderr, "agent %d: %v\n", i, err)
			}
			reports[i] = r
		}(i, agent, ac)
	}
	report, err := server.RunSession(conns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, c := range conns {
		c.Close()
	}
	wg.Wait()
	printReport(report)
	for i, r := range reports {
		fmt.Printf("agent %d: won=%v paid=%.2f %s\n", i, r.Won, r.Paid, r.PayReason)
	}
}
