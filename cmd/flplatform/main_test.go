package main

import (
	"testing"
	"time"

	"github.com/fedauction/afl"
)

func TestNewAgentDeterministic(t *testing.T) {
	a := newAgent(3, 5, 8, 6)
	b := newAgent(3, 5, 8, 6)
	if len(a.Bids) != 1 || len(b.Bids) != 1 {
		t.Fatalf("agents must carry one bid: %d, %d", len(a.Bids), len(b.Bids))
	}
	if a.Bids[0] != b.Bids[0] {
		t.Fatalf("equal seeds must yield identical bids: %+v vs %+v", a.Bids[0], b.Bids[0])
	}
	if a.Learner.Data.Len() != b.Learner.Data.Len() {
		t.Fatal("shards differ across equal-seed agents")
	}
	c := newAgent(4, 5, 8, 6)
	if a.Bids[0] == c.Bids[0] {
		t.Fatal("different agent ids must derive different bids")
	}
	// Bids must be structurally valid for the job horizon.
	if err := a.Bids[0].Validate(8); err != nil {
		t.Fatal(err)
	}
}

func TestNewServerConfig(t *testing.T) {
	server, eval := newServer(5, 4, 8, 2, 6, afl.RetryPolicy{Attempts: 2, Backoff: 50 * time.Millisecond})
	if server == nil {
		t.Fatal("nil server")
	}
	if eval.Len() == 0 {
		t.Fatal("empty eval set")
	}
}
