// Command marketsim runs the adversarial market simulation fleet: seeded
// sessions of strategic bidder populations (bid-shading learners,
// collusive rings, sybil splitters, dropout-prone stragglers) hammering
// the auction service concurrently, each session's realized utility
// compared against its truthful counterfactual re-solved on the honest
// bid vector.
//
// The run produces two artifacts: a deterministic economics report (a
// pure function of -seed; byte-identical replay at any -workers) and a
// BENCH_market.json load artifact (auctions/s, p50/p99 submit-to-commit
// latency, edge rejections). The process exits 1 when any strategic
// population beats truthtelling under A_FL — the fleet is an executable
// truthfulness assertion, not just a load generator.
//
// Usage:
//
//	marketsim [-sessions 1000] [-seed 1] [-workers 0]
//	          [-clients 16] [-t 8] [-k 2] [-rounds 3]
//	          [-target market|engine|http] [-addr http://host:port]
//	          [-rate 0] [-burst 0] [-max-pending 0]
//	          [-durability] [-quick]
//	          [-out BENCH_market.json] [-report path]
//
// -durability adds the fast-path tables to the bench artifact:
// sustained fully durable ingest (SyncEvery=1) with and without group
// commit, and cold-restart recovery time against history length with
// and without checkpoints. -quick shrinks it for CI smoke;
// -sessions 0 skips the fleet and emits just those tables.
//
// Targets:
//
//	market  in-process marketd.Market — the real service stack (batch
//	        scheduler, pooled engines, commit protocol) minus HTTP (default)
//	engine  inline core.Engine solves, no service in the loop
//	http    the daemon's real HTTP API; -addr selects an external daemon,
//	        empty -addr self-hosts one on a loopback listener so the edge
//	        (rate limiting, admission control) is exercised in-process
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"

	"github.com/fedauction/afl/internal/marketd"
	"github.com/fedauction/afl/internal/marketsim"
	"github.com/fedauction/afl/internal/obs"
)

func main() { os.Exit(run(os.Args[1:])) }

func run(args []string) int {
	fs := flag.NewFlagSet("marketsim", flag.ExitOnError)
	cfg := marketsim.DefaultFleetConfig()
	fs.IntVar(&cfg.Sessions, "sessions", cfg.Sessions, "number of seeded strategic sessions")
	fs.Int64Var(&cfg.Seed, "seed", cfg.Seed, "fleet seed; equal seeds replay byte-identically")
	fs.IntVar(&cfg.Workers, "workers", 0, "concurrent sessions (0 = GOMAXPROCS)")
	fs.IntVar(&cfg.Clients, "clients", cfg.Clients, "clients per session")
	fs.IntVar(&cfg.T, "t", cfg.T, "global iterations per auction")
	fs.IntVar(&cfg.K, "k", cfg.K, "required clients per iteration")
	fs.IntVar(&cfg.Rounds, "rounds", cfg.Rounds, "auction rounds per session")
	target := fs.String("target", "market", "market | engine | http")
	addr := fs.String("addr", "", "daemon base URL for -target http (empty self-hosts)")
	rate := fs.Float64("rate", 0, "per-client rate limit for the hosted market (0 = off)")
	burst := fs.Int("burst", 0, "rate-limit burst for the hosted market")
	maxPending := fs.Int("max-pending", 0, "admission bound for the hosted market (0 = off)")
	out := fs.String("out", "BENCH_market.json", "load artifact path (- for stdout)")
	reportPath := fs.String("report", "", "economics report path (default stdout)")
	durability := fs.Bool("durability", false, "run the durability fast-path bench (ingest + recovery tables)")
	quick := fs.Bool("quick", false, "shrink the durability bench for CI smoke (small histories, fewer auctions)")
	fs.Parse(args)

	ctx := context.Background()

	var dur marketsim.DurabilityBench
	if *durability {
		var err error
		dur, err = marketsim.RunDurabilityBench(ctx, marketsim.DurabilityOptions{Quick: *quick})
		if err != nil {
			return fail("durability bench: %v", err)
		}
		for _, row := range dur.Ingest {
			fmt.Fprintf(os.Stderr, "marketsim: ingest %-12s %7.0f auctions/s (%d submitters, %d fsyncs, %.1f records/fsync, %.0f allocs/auction)\n",
				row.Mode, row.AuctionsPerSec, row.Submitters, row.Fsyncs, row.RecordsPerFsync, row.AllocsPerAuction)
		}
		for _, row := range dur.Recovery {
			fmt.Fprintf(os.Stderr, "marketsim: recovery history=%-8d ckpt=%-5v open %8.1fms (tail %d records, %d segments, %d bytes)\n",
				row.History, row.Checkpoints, row.OpenMs, row.TailReplayed, row.Segments, row.WALBytes)
		}
	}

	if cfg.Sessions == 0 {
		// -sessions 0 skips the fleet: emit just the durability tables.
		benchBytes, err := marketsim.Bench{Ingest: dur.Ingest, Recovery: dur.Recovery}.Encode()
		if err != nil {
			return fail("encode bench: %v", err)
		}
		if err := emit(*out, benchBytes); err != nil {
			return fail("write bench: %v", err)
		}
		return 0
	}

	metrics := obs.NewMetrics(nil)
	mcfg := marketd.Config{
		Workers:    cfg.Workers,
		RatePerSec: *rate,
		Burst:      *burst,
		MaxPending: *maxPending,
		Observer:   metrics,
	}

	switch *target {
	case "engine":
		cfg.Target = marketsim.EngineTarget{}
	case "market":
		m, err := marketd.Open(ctx, mcfg)
		if err != nil {
			return fail("open market: %v", err)
		}
		defer m.Close()
		cfg.Target = marketsim.MarketTarget{M: m}
		cfg.Metrics = metrics
	case "http":
		base := *addr
		if base == "" {
			m, err := marketd.Open(ctx, mcfg)
			if err != nil {
				return fail("open market: %v", err)
			}
			defer m.Close()
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return fail("listen: %v", err)
			}
			srv := &http.Server{Handler: marketd.Handler(m)}
			go srv.Serve(ln)
			defer srv.Close()
			base = "http://" + ln.Addr().String()
			cfg.Metrics = metrics
		}
		cfg.Target = &marketsim.HTTPTarget{BaseURL: base}
	default:
		return fail("unknown -target %q (want market, engine or http)", *target)
	}

	rep, bench, err := marketsim.RunFleet(ctx, cfg)
	if err != nil {
		return fail("fleet: %v", err)
	}

	repBytes, err := rep.Encode()
	if err != nil {
		return fail("encode report: %v", err)
	}
	if err := emit(*reportPath, repBytes); err != nil {
		return fail("write report: %v", err)
	}
	bench.Ingest = dur.Ingest
	bench.Recovery = dur.Recovery
	benchBytes, err := bench.Encode()
	if err != nil {
		return fail("encode bench: %v", err)
	}
	if err := emit(*out, benchBytes); err != nil {
		return fail("write bench: %v", err)
	}

	fmt.Fprintf(os.Stderr, "marketsim: %d sessions, %d auctions, %.0f auctions/s, p50 %.3fms p99 %.3fms, 429s %d, 503s %d\n",
		bench.Sessions, bench.Auctions, bench.AuctionsPerSec, bench.P50Ms, bench.P99Ms, bench.RateLimited, bench.AdmissionRejected)
	for _, p := range rep.Populations {
		fmt.Fprintf(os.Stderr, "marketsim: %-10s %-12s leakage %+.4f (strategic %+.4f vs truthful %+.4f over %d agent-rounds)\n",
			p.Strategy, p.Mechanism, p.Leakage, p.MeanStrategicUtility, p.MeanTruthfulUtility, p.AgentRounds)
	}

	if err := rep.AssertTruthful(); err != nil {
		fmt.Fprintf(os.Stderr, "marketsim: TRUTHFULNESS VIOLATION: %v\n", err)
		return 1
	}
	fmt.Fprintln(os.Stderr, "marketsim: truthfulness assertion holds: no strategic population beats truthtelling under a_fl")
	return 0
}

// emit writes data to path; "" or "-" selects stdout.
func emit(path string, data []byte) error {
	if path == "" || path == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func fail(format string, args ...any) int {
	fmt.Fprintf(os.Stderr, "marketsim: "+format+"\n", args...)
	return 1
}
