// Command benchcore benchmarks the incremental T̂_g-sweep engine against
// the frozen pre-refactor solver (internal/seedwdp) and writes the
// comparison to a machine-readable JSON report (BENCH_core.json at the
// repo root, regenerated with `make bench-json`).
//
// The differential test suite guarantees every measured path returns
// bit-identical results, so the numbers isolate pure implementation
// overhead: per-T̂_g re-filtering and map-based solver state in the seed
// versus shared qualification delta lists and pooled slice-backed scratch
// in the engine.
//
// A second group of payments_* paths benchmarks the exact-critical
// pricing stage on a dedicated workload: the frozen eager-serial seed
// (prices every candidate T̂_g), the retained in-tree eager reference,
// and the lazy engine pricing only the chosen T̂_g sequentially and in
// parallel.
//
// A third group measures the columnar (BidSet) hot path. sweep_w<n> rows
// form the multi-worker scaling table: one warm columnar engine per
// population, the T̂_g sweep fanned over n ∈ -workers workers, at every
// -sizes population and at the large single-minded populations. columnar
// rows are the end-to-end CompileBids→RunSet path at 10⁴ clients always,
// and at 10⁵/10⁶ behind -big (the seed solver is never run at those
// sizes; the differential suite locks columnar↔seed identity at 10⁴).
// The run executes under the ambient GOMAXPROCS — never pinned — and the
// report records cpus/gomaxprocs so single-core runners are read as such.
//
// Usage:
//
//	benchcore [-out BENCH_core.json] [-sizes 100,500,1000] [-quick]
//	          [-workers 1,2,4,8] [-batch-workers 0] [-big]
//	          [-cpuprofile cpu.pb.gz] [-memprofile mem.pb.gz]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"math/rand"

	"github.com/fedauction/afl"
	"github.com/fedauction/afl/internal/core"
	"github.com/fedauction/afl/internal/lp"
	"github.com/fedauction/afl/internal/obs"
	"github.com/fedauction/afl/internal/seedwdp"
	"github.com/fedauction/afl/internal/workload"
)

type measurement struct {
	Path        string  `json:"path"`
	Clients     int     `json:"clients"`
	K           int     `json:"k"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// Throughput paths (throughput_*) additionally record the batch
	// shape. Their NsPerOp/AllocsPerOp/BytesPerOp are normalized per
	// auction (batch cost divided by Instances) so they stay comparable
	// with the single-auction paths; AuctionsPerSec is the headline
	// throughput number.
	Workers        int     `json:"workers,omitempty"`
	Instances      int     `json:"instances,omitempty"`
	AuctionsPerSec float64 `json:"auctions_per_sec,omitempty"`
	// Frontier paths (frontier_*) additionally record the solver tier
	// and the certified approximation ratio of the measured instance
	// (1.0 for the exact tier, Result.Cert.Ratio otherwise — the bound
	// is certified, so the true loss is at most this).
	Solver string  `json:"solver,omitempty"`
	Ratio  float64 `json:"ratio,omitempty"`
}

type summary struct {
	// All ratios compare the seed baseline with a live path at the largest
	// measured population; > 1 means the live path is better.
	Clients            int     `json:"clients"`
	SpeedupSequential  float64 `json:"speedup_sequential"`
	SpeedupConcurrent  float64 `json:"speedup_concurrent"`
	SpeedupEngineReuse float64 `json:"speedup_engine_reuse"`
	AllocRatio         float64 `json:"alloc_ratio"`
	BytesRatio         float64 `json:"bytes_ratio"`
	// Payments ratios compare the frozen eager-serial exact-critical
	// auction (payments_seed) with the lazy pricing paths on the payments
	// configuration.
	PaymentsClients         int     `json:"payments_clients"`
	SpeedupPayments         float64 `json:"speedup_payments"`
	SpeedupPaymentsParallel float64 `json:"speedup_payments_parallel"`
	// Throughput ratios compare goroutine-per-auction (throughput_naive)
	// with the batch engine (throughput_batch) at the headline worker
	// width; > 1 means the batch engine is better.
	ThroughputInstances  int     `json:"throughput_instances"`
	ThroughputClients    int     `json:"throughput_clients"`
	SpeedupThroughput    float64 `json:"speedup_throughput"`
	ThroughputAllocRatio float64 `json:"throughput_alloc_ratio"`
	// Columnar headline: the largest measured columnar population, its
	// end-to-end CompileBids→RunSet solve time, and the sweep_w1 /
	// sweep_w<max> ratio at that population (> 1 means the wide sweep
	// wins; expect ≤ 1 on single-core runners — read it against
	// gomaxprocs).
	ColumnarClients  int     `json:"columnar_clients"`
	ColumnarSolveSec float64 `json:"columnar_solve_sec"`
	SpeedupSweepWide float64 `json:"speedup_sweep_wide"`
	// Frontier headline, at the largest frontier population: the speedup
	// of the fastest approximate tier whose certified ratio stays within
	// the tight (≤ 1.05) and loose (≤ 1.2) quality envelopes, versus
	// frontier_exact, plus the certified ratio and path of each winner.
	// Zero when no tier certifies inside the envelope at that size.
	FrontierClients      int     `json:"frontier_clients,omitempty"`
	SpeedupFrontierTight float64 `json:"speedup_frontier_tight,omitempty"`
	FrontierTightRatio   float64 `json:"frontier_tight_ratio,omitempty"`
	FrontierTightPath    string  `json:"frontier_tight_path,omitempty"`
	SpeedupFrontierLoose float64 `json:"speedup_frontier_loose,omitempty"`
	FrontierLooseRatio   float64 `json:"frontier_loose_ratio,omitempty"`
	FrontierLoosePath    string  `json:"frontier_loose_path,omitempty"`
	// FrontierLPCostRatio is frontier_exact's cover cost divided by
	// frontier_lp's at the largest frontier population — above 1 when
	// LP-guided rounding found a cheaper cover than the exact greedy
	// sweep (quality the exact tier cannot reach, at lower speed).
	FrontierLPCostRatio float64 `json:"frontier_lp_cost_ratio,omitempty"`
}

// paymentsConfig records the dedicated workload the payments_* paths run
// on: exact-critical pricing re-solves the allocation per probe, so the
// sweep-scale defaults (T=50, K=20) would take hours on the eager seed.
type paymentsConfig struct {
	Clients int     `json:"clients"`
	T       int     `json:"t"`
	K       int     `json:"k"`
	Reserve float64 `json:"reserve"`
}

type report struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	CPUs        int    `json:"cpus"`
	// GOMAXPROCS is the scheduler width the run executed under and
	// Workers the effective headline batch width after clamping — the
	// context every throughput_* number has to be read in.
	GOMAXPROCS  int            `json:"gomaxprocs"`
	Workers     int            `json:"workers"`
	BidsPerUser int            `json:"bids_per_user"`
	T           int            `json:"t"`
	K           int            `json:"k"`
	Payments    paymentsConfig `json:"payments"`
	Results     []measurement  `json:"results"`
	Summary     summary        `json:"summary"`
}

func main() {
	out := flag.String("out", "BENCH_core.json", "output file")
	sizesArg := flag.String("sizes", "100,500,1000", "comma-separated client counts")
	workersArg := flag.String("workers", "1,2,4,8", "comma-separated worker counts for the sweep scaling table (sweep_w<n> rows)")
	batchWorkersArg := flag.String("batch-workers", "0", "comma-separated batch widths for the throughput paths (0 = GOMAXPROCS); the first is the headline width")
	big := flag.Bool("big", false, "extend the columnar rows to 10⁵- and 10⁶-client populations (see `make bench-big`)")
	frontier := flag.Bool("frontier", false, "extend the solver-frontier rows to the 10⁵-client population (10⁶ with -big; see `make bench-frontier`)")
	quick := flag.Bool("quick", false, "single iteration per benchmark, one 10⁴-bid columnar row plus an exact/coarse frontier pair (CI smoke)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the benchmark run to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file at exit")
	flag.Parse()

	if *cpuprofile != "" || *memprofile != "" {
		stop, err := obs.StartProfiles(*cpuprofile, *memprofile)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintln(os.Stderr, "benchcore: profiles:", err)
			}
		}()
	}

	// testing.Benchmark reads the (unregistered) -test.benchtime flag;
	// registering the testing flags lets us set it programmatically.
	testing.Init()
	benchtime := "2s"
	if *quick {
		benchtime = "1x"
	}
	if err := flag.Set("test.benchtime", benchtime); err != nil {
		fatal(err)
	}

	var sizes []int
	for _, s := range strings.Split(*sizesArg, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			fatal(fmt.Errorf("bad -sizes entry %q", s))
		}
		sizes = append(sizes, n)
	}
	var sweepWidths []int
	for _, s := range strings.Split(*workersArg, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			fatal(fmt.Errorf("bad -workers entry %q", s))
		}
		sweepWidths = append(sweepWidths, n)
	}
	var widths []int
	for _, s := range strings.Split(*batchWorkersArg, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 0 {
			fatal(fmt.Errorf("bad -batch-workers entry %q", s))
		}
		widths = append(widths, n)
	}

	p := workload.NewDefaultParams()
	rep := report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		CPUs:        runtime.NumCPU(),
		BidsPerUser: p.BidsPerUser,
		T:           p.T,
		K:           p.K,
	}

	seqPaths := []struct {
		name string
		run  func(bids []afl.Bid, cfg afl.Config) func() bool
	}{
		{"seed", func(bids []afl.Bid, cfg afl.Config) func() bool {
			return func() bool {
				res, err := seedwdp.RunAuction(bids, cfg)
				return err == nil && res.Feasible
			}
		}},
		{"incremental", func(bids []afl.Bid, cfg afl.Config) func() bool {
			return func() bool {
				res, err := afl.RunAuction(bids, cfg)
				return err == nil && res.Feasible
			}
		}},
		{"incremental_concurrent", func(bids []afl.Bid, cfg afl.Config) func() bool {
			return func() bool {
				res, err := afl.RunAuctionConcurrent(bids, cfg, 0)
				return err == nil && res.Feasible
			}
		}},
		{"engine_reuse", func(bids []afl.Bid, cfg afl.Config) func() bool {
			eng, err := afl.NewEngine(bids, cfg)
			if err != nil {
				fatal(err)
			}
			return func() bool { return eng.Run().Feasible }
		}},
	}

	perPath := map[string]measurement{} // at the largest size
	ctx := context.Background()

	// sweepScaling appends the sweep_w<n> scaling rows for one population:
	// a warm columnar engine, the T̂_g sweep fanned over each requested
	// worker count. Engine construction sits outside the timed op, so the
	// rows isolate how the sharded sweep itself scales with workers.
	sweepScaling := func(clients, k int, set *afl.BidSet, cfg afl.Config, scaleWidths []int) {
		eng, err := afl.NewEngineSet(set, cfg)
		if err != nil {
			fatal(err)
		}
		for _, w := range scaleWidths {
			w := w
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if !eng.RunConcurrent(w).Feasible {
						b.Fatal("sweep infeasible")
					}
				}
			})
			m := measurement{
				Path:        fmt.Sprintf("sweep_w%d", w),
				Clients:     clients,
				K:           k,
				Workers:     w,
				Iterations:  r.N,
				NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
				AllocsPerOp: r.AllocsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
			}
			rep.Results = append(rep.Results, m)
			perPath[m.Path] = m
			fmt.Fprintf(os.Stderr, "%-24s I=%-7d %12.0f ns/op %10d allocs/op %12d B/op\n",
				m.Path, clients, m.NsPerOp, m.AllocsPerOp, m.BytesPerOp)
		}
	}

	for _, clients := range sizes {
		p := workload.NewDefaultParams()
		p.Clients = clients
		if clients < 200 {
			p.K = 10 // the paper's K=20 is infeasible below ~200 clients
		}
		bids, err := workload.Generate(p)
		if err != nil {
			fatal(err)
		}
		cfg := p.Config()
		for _, path := range seqPaths {
			op := path.run(bids, cfg)
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if !op() {
						b.Fatal("sweep infeasible")
					}
				}
			})
			m := measurement{
				Path:        path.name,
				Clients:     clients,
				K:           p.K,
				Iterations:  r.N,
				NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
				AllocsPerOp: r.AllocsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
			}
			rep.Results = append(rep.Results, m)
			perPath[path.name] = m
			fmt.Fprintf(os.Stderr, "%-24s I=%-5d %12.0f ns/op %10d allocs/op %12d B/op\n",
				path.name, clients, m.NsPerOp, m.AllocsPerOp, m.BytesPerOp)
		}
		sweepScaling(clients, p.K, afl.CompileBids(bids), cfg, sweepWidths)
	}

	// --- columnar large-population rows ---
	//
	// Single-minded populations (one bid per client, the market-scale
	// shape of the motivating workloads) at 10⁴ clients always, 10⁵ and
	// 10⁶ behind -big. The columnar row is the end-to-end facade path —
	// CompileBids once outside the op, RunSet per op, so engine
	// construction and the full sweep are both inside the number — and
	// sweep_w<n> rows extend the scaling table on a warm engine. The
	// frozen seed solver is deliberately absent here (hours per run at
	// 10⁶); the differential suite locks columnar↔seed bit-identity at
	// 10⁴ bids and workers ∈ {1, 8}, so these rows measure a proven-
	// identical path.
	colSizes := []int{10_000}
	if *big {
		colSizes = append(colSizes, 100_000, 1_000_000)
	}
	colWidths := sweepWidths
	if *quick {
		colWidths = sweepWidths[:1]
	}
	var colHead measurement
	for _, clients := range colSizes {
		cp := workload.NewDefaultParams()
		cp.Clients = clients
		cp.BidsPerUser = 1
		cbids, err := workload.Generate(cp)
		if err != nil {
			fatal(err)
		}
		ccfg := cp.Config()
		cset := afl.CompileBids(cbids)
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := afl.RunSet(ctx, cset, ccfg)
				if err != nil || !res.Feasible {
					b.Fatal("columnar auction infeasible")
				}
			}
		})
		m := measurement{
			Path:        "columnar",
			Clients:     clients,
			K:           cp.K,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		rep.Results = append(rep.Results, m)
		perPath[m.Path] = m
		colHead = m
		fmt.Fprintf(os.Stderr, "%-24s I=%-7d %12.0f ns/op %10d allocs/op %12d B/op\n",
			m.Path, clients, m.NsPerOp, m.AllocsPerOp, m.BytesPerOp)
		sweepScaling(clients, cp.K, cset, ccfg, colWidths)
	}

	// --- approximate solver frontier: quality vs speed on the columnar WDP ---
	//
	// One row per (population, solver tier) on the single-minded columnar
	// workload: the exact sweep, coarse-to-fine at the default and at a
	// wide stride, and LP-guided rounding. Every row records auctions/s
	// and the tier's CERTIFIED approximation ratio on the measured
	// instance — the certificate lower-bounds what the exact sweep would
	// return, so a row reading (2×, 1.04) means twice the throughput at a
	// proven ≤ 4% cost loss. Before timing, one shot per size re-checks
	// the tier contracts on the exact instance being measured: stride-1
	// coarse-to-fine must be bit-identical to the exact sweep, every
	// approximate tier must attach a certificate with Ratio ≥ 1 and a
	// lower bound that cannot exceed the exact cost.
	fSizes := []int{10_000}
	if *frontier {
		fSizes = append(fSizes, 100_000)
		if *big {
			fSizes = append(fSizes, 1_000_000)
		}
	}
	fTiers := []struct {
		name string
		opts []afl.Option
	}{
		{"frontier_exact", nil},
		{"frontier_coarse", []afl.Option{afl.WithSolver(afl.SolverCoarseFine)}},
		{"frontier_coarse_s16", []afl.Option{afl.WithSolver(afl.SolverCoarseFine), afl.WithStride(16)}},
		{"frontier_lp", []afl.Option{afl.WithSolver(afl.SolverLPRound)}},
	}
	if *quick {
		fTiers = fTiers[:2]
	}
	frontierCost := map[string]float64{} // at the largest frontier size
	for _, clients := range fSizes {
		fp := workload.NewDefaultParams()
		fp.Clients = clients
		fp.BidsPerUser = 1
		fbids, err := workload.Generate(fp)
		if err != nil {
			fatal(err)
		}
		fcfg := fp.Config()
		fset := afl.CompileBids(fbids)

		exactRes, err := afl.RunSet(ctx, fset, fcfg)
		if err != nil || !exactRes.Feasible {
			fatal(fmt.Errorf("frontier workload infeasible at %d clients: %v", clients, err))
		}
		if exactRes.Cert != nil {
			fatal(fmt.Errorf("exact tier attached a certificate at %d clients", clients))
		}
		dense, err := afl.RunSet(ctx, fset, fcfg, afl.WithSolver(afl.SolverCoarseFine), afl.WithStride(1))
		if err != nil {
			fatal(err)
		}
		if dense.Cert == nil || dense.Cert.Solved != dense.Cert.Candidates {
			fatal(fmt.Errorf("stride-1 coarse-to-fine skipped candidates at %d clients", clients))
		}
		dense.Cert = nil
		if !reflect.DeepEqual(dense, exactRes) {
			fatal(fmt.Errorf("stride-1 coarse-to-fine diverges from the exact sweep at %d clients", clients))
		}

		for _, tier := range fTiers {
			probe := exactRes
			ratio := 1.0
			solver := afl.SolverExact
			if tier.opts != nil {
				probe, err = afl.RunSet(ctx, fset, fcfg, tier.opts...)
				if err != nil {
					fatal(err)
				}
				c := probe.Cert
				if c == nil || c.Ratio < 1 || c.LowerBound > exactRes.Cost*(1+1e-9) {
					fatal(fmt.Errorf("%s certificate contract violated at %d clients: %+v", tier.name, clients, c))
				}
				ratio, solver = c.Ratio, c.Solver
			}
			frontierCost[tier.name] = probe.Cost
			opts := tier.opts
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res, err := afl.RunSet(ctx, fset, fcfg, opts...)
					if err != nil || !res.Feasible {
						b.Fatal("frontier auction infeasible")
					}
				}
			})
			m := measurement{
				Path:           tier.name,
				Clients:        clients,
				K:              fp.K,
				Iterations:     r.N,
				NsPerOp:        float64(r.T.Nanoseconds()) / float64(r.N),
				AllocsPerOp:    r.AllocsPerOp(),
				BytesPerOp:     r.AllocedBytesPerOp(),
				AuctionsPerSec: float64(r.N) * 1e9 / float64(r.T.Nanoseconds()),
				Solver:         solver.String(),
				Ratio:          ratio,
			}
			rep.Results = append(rep.Results, m)
			perPath[m.Path] = m
			fmt.Fprintf(os.Stderr, "%-24s I=%-7d %12.0f ns/op %10.2f auctions/s ratio=%.4f\n",
				m.Path, clients, m.NsPerOp, m.AuctionsPerSec, m.Ratio)
		}
	}

	// --- pooled dense-simplex alloc guard ---
	//
	// A master-shaped mixed-relation LP (coverage GE rows over convexity
	// LE rows, the layout every column-generation master has) solved in a
	// steady-state loop: with the tableau pool warm, allocs/op counts
	// only what escapes in the Solution. A regression here means the
	// pool stopped recycling (the companion test in internal/lp fails
	// CI at ≤ 6 objects; the row records the measured number).
	{
		lpp := masterShapedLP(30, 40, 120)
		if sol, err := lp.Solve(lpp); err != nil || sol.Status != lp.Optimal {
			fatal(fmt.Errorf("lp_simplex warmup: status %v err %v", sol.Status, err))
		}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := lp.Solve(lpp); err != nil {
					b.Fatal(err)
				}
			}
		})
		m := measurement{
			Path:        "lp_simplex",
			Clients:     lpp.NumVars,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		rep.Results = append(rep.Results, m)
		perPath[m.Path] = m
		fmt.Fprintf(os.Stderr, "%-24s vars=%-4d %12.0f ns/op %10d allocs/op %12d B/op\n",
			m.Path, lpp.NumVars, m.NsPerOp, m.AllocsPerOp, m.BytesPerOp)
	}

	// --- lazy exact-critical pricing vs the frozen eager-serial seed ---
	//
	// payments_seed is the pre-lazification baseline: internal/seedwdp
	// prices every candidate T̂_g eagerly with the blind-doubling bracket.
	// payments_eager is the retained in-tree eager reference
	// (core.RunAuctionEager, seeded brackets), payments_lazy prices only
	// the chosen T̂_g sequentially, and payments_parallel fans the
	// per-winner bisections over GOMAXPROCS workers.
	pp := workload.NewDefaultParams()
	pp.Clients, pp.T, pp.K = 200, 10, 4
	if *quick {
		pp.Clients, pp.K = 60, 3 // T stays 10: window generation needs 2J ≤ T draws
	}
	pbids, err := workload.Generate(pp)
	if err != nil {
		fatal(err)
	}
	pcfg := pp.Config()
	pcfg.PaymentRule = afl.RuleExactCritical
	pcfg.ExcludeOwnBids = true
	pcfg.ReservePrice = 10 * pp.CostHi
	rep.Payments = paymentsConfig{Clients: pp.Clients, T: pp.T, K: pp.K, Reserve: pcfg.ReservePrice}

	// One-shot sanity check before timing anything: the lazy and parallel
	// paths must reproduce the eager reference's chosen-T̂_g payments
	// bit-for-bit (the differential suite proves this over a corpus; this
	// guards the exact instance being benchmarked).
	eagerRes, err := core.RunAuctionEager(pbids, pcfg)
	if err != nil || !eagerRes.Feasible {
		fatal(fmt.Errorf("payments workload infeasible under the eager reference: %v", err))
	}
	for _, workers := range []int{1, -1} {
		got, err := afl.Run(ctx, pbids, pcfg, afl.WithWorkers(workers))
		if err != nil {
			fatal(err)
		}
		if got.Tg != eagerRes.Tg || !reflect.DeepEqual(got.Winners, eagerRes.Winners) {
			fatal(fmt.Errorf("lazy pricing (workers=%d) diverges from the eager reference", workers))
		}
	}

	paymentPaths := []struct {
		name string
		op   func() bool
	}{
		{"payments_seed", func() bool {
			res, err := seedwdp.RunAuction(pbids, pcfg)
			return err == nil && res.Feasible
		}},
		{"payments_eager", func() bool {
			res, err := core.RunAuctionEager(pbids, pcfg)
			return err == nil && res.Feasible
		}},
		{"payments_lazy", func() bool {
			res, err := afl.Run(ctx, pbids, pcfg, afl.WithWorkers(1))
			return err == nil && res.Feasible
		}},
		{"payments_parallel", func() bool {
			res, err := afl.Run(ctx, pbids, pcfg, afl.WithWorkers(-1))
			return err == nil && res.Feasible
		}},
	}
	for _, path := range paymentPaths {
		op := path.op
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if !op() {
					b.Fatal("payments auction infeasible")
				}
			}
		})
		m := measurement{
			Path:        path.name,
			Clients:     pp.Clients,
			K:           pp.K,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		rep.Results = append(rep.Results, m)
		perPath[path.name] = m
		fmt.Fprintf(os.Stderr, "%-24s I=%-5d %12.0f ns/op %10d allocs/op %12d B/op\n",
			path.name, pp.Clients, m.NsPerOp, m.AllocsPerOp, m.BytesPerOp)
	}

	// --- cross-auction throughput: goroutine-per-auction vs batch engine ---
	//
	// The unit here is auctions per second over a fleet of independent
	// instances, not the latency of one sweep. throughput_naive is the
	// obvious fleet runner — one goroutine per auction, each paying a
	// full engine construction — and throughput_batch is afl.RunBatch:
	// the sharded work-stealing scheduler over pooled engines. The first
	// -workers width is the headline (plain path names); further widths
	// are recorded with a _w<n> suffix so baseline-guarded tests keep
	// resolving the stable names.
	ti, tc := 1000, 100
	if *quick {
		ti, tc = 32, 40
	}
	// Instance generation scans seeds upward and keeps only feasible
	// auctions (a small fraction of random workloads at Clients=100/K=10
	// admit no full-coverage T̂_g); the serial afl.Run used for the
	// screen doubles as the bit-identity reference below, so nothing is
	// solved twice.
	insts := make([]afl.Instance, 0, ti)
	serial := make([]afl.Result, 0, ti)
	for seed := int64(3000); len(insts) < ti; seed++ {
		tp := workload.NewDefaultParams()
		tp.Clients = tc
		if tc < 200 {
			tp.K = 10
		}
		if *quick {
			tp.T, tp.K = 15, 4
		}
		tp.Seed = seed
		tbids, err := workload.Generate(tp)
		if err != nil {
			fatal(err)
		}
		inst := afl.Instance{Bids: tbids, Cfg: tp.Config()}
		res, err := afl.Run(ctx, inst.Bids, inst.Cfg)
		if err != nil || !res.Feasible {
			continue
		}
		insts = append(insts, inst)
		serial = append(serial, res)
	}
	tk := insts[0].Cfg.K

	// One-shot sanity check before timing anything: every measured width
	// must reproduce the serial afl.Run outcome of every instance
	// bit-for-bit. This also warms the engine shape pool, so the timed
	// batch path measures steady-state reuse, which is how a fleet runs.
	for _, width := range widths {
		outcomes, err := afl.RunBatch(ctx, insts, afl.WithWorkers(width))
		if err != nil {
			fatal(err)
		}
		for i, oc := range outcomes {
			if oc.Err != nil || !reflect.DeepEqual(oc.Result, serial[i]) {
				fatal(fmt.Errorf("batch (workers=%d) diverges from serial Run on instance %d: %v", width, i, oc.Err))
			}
		}
	}
	// The reference results are hundreds of MB of live heap; drop them
	// before timing so every GC cycle during measurement marks only the
	// measured path's own live set.
	serial = nil

	effective := func(width int) int {
		w := width
		if w <= 0 {
			w = runtime.GOMAXPROCS(0)
		}
		if w > ti {
			w = ti
		}
		return w
	}
	rep.GOMAXPROCS = runtime.GOMAXPROCS(0)
	rep.Workers = effective(widths[0])

	// A fleet op is seconds long, so per-path iteration counts are tiny,
	// and on a shared single-core runner the machine speed itself drifts
	// by more than the few-percent structural gap between the paths
	// (frequency scaling, neighbour noise — the drift persists even with
	// GC disabled). Whole-fleet A/B timings are therefore unreliable at
	// this resolution. Instead the fleet is measured *paired*: the
	// instance set is split into small chunks, every chunk is timed once
	// per path back-to-back with the in-chunk order rotating, and each
	// path's per-round total is the sum of its chunk times. Low-frequency
	// drift then hits every path almost equally and cancels in the
	// comparison; each path keeps its best round. Allocation counts come
	// from the mutator's MemStats deltas over the same chunk ops.
	type tputPath struct {
		name  string
		width int
		op    func(chunk []afl.Instance) bool
	}
	// The naive fleet runner collects its results like the batch engine
	// does (a marketplace that drops auction outcomes has not run the
	// auctions), so both paths hold the same live set and the comparison
	// isolates scheduling and engine reuse.
	tpaths := []tputPath{{name: "throughput_naive", width: widths[0], op: func(chunk []afl.Instance) bool {
		var wg sync.WaitGroup
		var failed atomic.Bool
		results := make([]afl.Result, len(chunk))
		for i, inst := range chunk {
			wg.Add(1)
			go func(i int, inst afl.Instance) {
				defer wg.Done()
				res, err := afl.Run(ctx, inst.Bids, inst.Cfg)
				if err != nil || !res.Feasible {
					failed.Store(true)
				}
				results[i] = res
			}(i, inst)
		}
		wg.Wait()
		return !failed.Load() && len(results) == len(chunk)
	}}}
	for i, width := range widths {
		name := "throughput_batch"
		if i > 0 {
			name = fmt.Sprintf("throughput_batch_w%d", effective(width))
		}
		width := width
		tpaths = append(tpaths, tputPath{name: name, width: width, op: func(chunk []afl.Instance) bool {
			outcomes, err := afl.RunBatch(ctx, chunk, afl.WithWorkers(width))
			if err != nil {
				return false
			}
			for _, oc := range outcomes {
				if oc.Err != nil || !oc.Result.Feasible {
					return false
				}
			}
			return true
		}})
	}

	rounds, chunkSize := 3, 50
	if *quick {
		rounds = 1
	}
	type tputBest struct {
		ns     float64
		allocs uint64
		bytes  uint64
	}
	type tputAcc struct {
		ns     time.Duration
		allocs uint64
		bytes  uint64
	}
	best := make(map[string]tputBest, len(tpaths))
	var ms0, ms1 runtime.MemStats
	for r := 0; r < rounds; r++ {
		runtime.GC()
		runtime.GC()
		acc := make([]tputAcc, len(tpaths))
		for c := 0; c*chunkSize < len(insts); c++ {
			hi := (c + 1) * chunkSize
			if hi > len(insts) {
				hi = len(insts)
			}
			chunk := insts[c*chunkSize : hi]
			// Rotate which path goes first on this chunk so every path
			// samples every in-chunk position (and its GC phase) equally.
			for o := 0; o < len(tpaths); o++ {
				p := (r + c + o) % len(tpaths)
				runtime.ReadMemStats(&ms0)
				t0 := time.Now()
				if !tpaths[p].op(chunk) {
					fatal(fmt.Errorf("throughput path %s failed", tpaths[p].name))
				}
				acc[p].ns += time.Since(t0)
				runtime.ReadMemStats(&ms1)
				acc[p].allocs += ms1.Mallocs - ms0.Mallocs
				acc[p].bytes += ms1.TotalAlloc - ms0.TotalAlloc
			}
		}
		for p, pth := range tpaths {
			ns := float64(acc[p].ns.Nanoseconds())
			b, seen := best[pth.name]
			if !seen || ns < b.ns {
				b.ns = ns
			}
			if !seen || acc[p].allocs < b.allocs {
				b.allocs = acc[p].allocs
			}
			if !seen || acc[p].bytes < b.bytes {
				b.bytes = acc[p].bytes
			}
			best[pth.name] = b
		}
	}
	for _, pth := range tpaths {
		b := best[pth.name]
		m := measurement{
			Path:           pth.name,
			Clients:        tc,
			K:              tk,
			Iterations:     rounds,
			NsPerOp:        b.ns / float64(ti),
			AllocsPerOp:    int64(b.allocs) / int64(ti),
			BytesPerOp:     int64(b.bytes) / int64(ti),
			Workers:        effective(pth.width),
			Instances:      ti,
			AuctionsPerSec: float64(ti) * 1e9 / b.ns,
		}
		rep.Results = append(rep.Results, m)
		perPath[pth.name] = m
		fmt.Fprintf(os.Stderr, "%-24s I=%-5d %12.0f ns/auction %8d allocs/auction %10.1f auctions/s (workers=%d)\n",
			pth.name, tc, m.NsPerOp, m.AllocsPerOp, m.AuctionsPerSec, m.Workers)
	}

	seed := perPath["seed"]
	ratio := func(a, b float64) float64 {
		if b <= 0 {
			return 0
		}
		return a / b
	}
	pseed := perPath["payments_seed"]
	rep.Summary = summary{
		Clients:                 seed.Clients,
		SpeedupSequential:       ratio(seed.NsPerOp, perPath["incremental"].NsPerOp),
		SpeedupConcurrent:       ratio(seed.NsPerOp, perPath["incremental_concurrent"].NsPerOp),
		SpeedupEngineReuse:      ratio(seed.NsPerOp, perPath["engine_reuse"].NsPerOp),
		AllocRatio:              ratio(float64(seed.AllocsPerOp), float64(perPath["incremental"].AllocsPerOp)),
		BytesRatio:              ratio(float64(seed.BytesPerOp), float64(perPath["incremental"].BytesPerOp)),
		PaymentsClients:         pseed.Clients,
		SpeedupPayments:         ratio(pseed.NsPerOp, perPath["payments_lazy"].NsPerOp),
		SpeedupPaymentsParallel: ratio(pseed.NsPerOp, perPath["payments_parallel"].NsPerOp),
		ThroughputInstances:     ti,
		ThroughputClients:       tc,
		SpeedupThroughput: ratio(perPath["throughput_batch"].AuctionsPerSec,
			perPath["throughput_naive"].AuctionsPerSec),
		ThroughputAllocRatio: ratio(float64(perPath["throughput_naive"].AllocsPerOp),
			float64(perPath["throughput_batch"].AllocsPerOp)),
		ColumnarClients:  colHead.Clients,
		ColumnarSolveSec: colHead.NsPerOp / 1e9,
		SpeedupSweepWide: ratio(perPath["sweep_w1"].NsPerOp,
			perPath[fmt.Sprintf("sweep_w%d", colWidths[len(colWidths)-1])].NsPerOp),
	}

	// Frontier headline: the fastest approximate tier inside each quality
	// envelope at the largest frontier population (perPath keeps the last,
	// i.e. largest, size of every path).
	fexact := perPath["frontier_exact"]
	rep.Summary.FrontierClients = fexact.Clients
	var tight, loose measurement
	for _, name := range []string{"frontier_coarse", "frontier_coarse_s16", "frontier_lp"} {
		m, ok := perPath[name]
		if !ok || m.Clients != fexact.Clients {
			continue
		}
		if m.Ratio <= 1.05+1e-9 && (tight.Path == "" || m.NsPerOp < tight.NsPerOp) {
			tight = m
		}
		if m.Ratio <= 1.2+1e-9 && (loose.Path == "" || m.NsPerOp < loose.NsPerOp) {
			loose = m
		}
	}
	if tight.Path != "" {
		rep.Summary.SpeedupFrontierTight = ratio(fexact.NsPerOp, tight.NsPerOp)
		rep.Summary.FrontierTightRatio = tight.Ratio
		rep.Summary.FrontierTightPath = tight.Path
	}
	if loose.Path != "" {
		rep.Summary.SpeedupFrontierLoose = ratio(fexact.NsPerOp, loose.NsPerOp)
		rep.Summary.FrontierLooseRatio = loose.Ratio
		rep.Summary.FrontierLoosePath = loose.Path
	}
	if lpCost, ok := frontierCost["frontier_lp"]; ok && lpCost > 0 {
		rep.Summary.FrontierLPCostRatio = frontierCost["frontier_exact"] / lpCost
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (seq speedup %.2fx, alloc ratio %.1fx, payments speedup %.1fx, throughput speedup %.2fx, columnar %d clients in %.2fs)\n",
		*out, rep.Summary.SpeedupSequential, rep.Summary.AllocRatio, rep.Summary.SpeedupPayments, rep.Summary.SpeedupThroughput,
		rep.Summary.ColumnarClients, rep.Summary.ColumnarSolveSec)
}

// masterShapedLP builds a deterministic LP with the shape of a
// column-generation restricted master: ge coverage rows (≥, RHS 2) over
// 0/1 column incidences, le convexity rows (≤, RHS 1) partitioning the
// variables, positive costs. Every variable covers a contiguous band of
// coverage rows — the windowed-schedule structure of real master columns
// — and the warmup Solve in main fails fast if a draw ever turned out
// infeasible (the generator is seeded, so it never does).
func masterShapedLP(ge, le, vars int) lp.Problem {
	rng := rand.New(rand.NewSource(7))
	p := lp.Problem{NumVars: vars, Objective: make([]float64, vars)}
	cover := make([][]float64, ge)
	for i := range cover {
		cover[i] = make([]float64, vars)
	}
	conv := make([][]float64, le)
	for i := range conv {
		conv[i] = make([]float64, vars)
	}
	for j := 0; j < vars; j++ {
		p.Objective[j] = 1 + rng.Float64()*9
		conv[j%le][j] = 1
		lo := rng.Intn(ge)
		hi := lo + 1 + rng.Intn(6)
		for r := lo; r < hi && r < ge; r++ {
			cover[r][j] = 1
		}
	}
	for r := 0; r < ge; r++ {
		p.Constraints = append(p.Constraints, lp.Constraint{Coef: cover[r], Rel: lp.GE, RHS: 2})
	}
	for r := 0; r < le; r++ {
		p.Constraints = append(p.Constraints, lp.Constraint{Coef: conv[r], Rel: lp.LE, RHS: 1})
	}
	return p
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcore:", err)
	os.Exit(1)
}
