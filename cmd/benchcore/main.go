// Command benchcore benchmarks the incremental T̂_g-sweep engine against
// the frozen pre-refactor solver (internal/seedwdp) and writes the
// comparison to a machine-readable JSON report (BENCH_core.json at the
// repo root, regenerated with `make bench-json`).
//
// The differential test suite guarantees every measured path returns
// bit-identical results, so the numbers isolate pure implementation
// overhead: per-T̂_g re-filtering and map-based solver state in the seed
// versus shared qualification delta lists and pooled slice-backed scratch
// in the engine.
//
// A second group of payments_* paths benchmarks the exact-critical
// pricing stage on a dedicated workload: the frozen eager-serial seed
// (prices every candidate T̂_g), the retained in-tree eager reference,
// and the lazy engine pricing only the chosen T̂_g sequentially and in
// parallel.
//
// Usage:
//
//	benchcore [-out BENCH_core.json] [-sizes 100,500,1000] [-quick]
//	          [-cpuprofile cpu.pb.gz] [-memprofile mem.pb.gz]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/fedauction/afl"
	"github.com/fedauction/afl/internal/core"
	"github.com/fedauction/afl/internal/obs"
	"github.com/fedauction/afl/internal/seedwdp"
	"github.com/fedauction/afl/internal/workload"
)

type measurement struct {
	Path        string  `json:"path"`
	Clients     int     `json:"clients"`
	K           int     `json:"k"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

type summary struct {
	// All ratios compare the seed baseline with a live path at the largest
	// measured population; > 1 means the live path is better.
	Clients            int     `json:"clients"`
	SpeedupSequential  float64 `json:"speedup_sequential"`
	SpeedupConcurrent  float64 `json:"speedup_concurrent"`
	SpeedupEngineReuse float64 `json:"speedup_engine_reuse"`
	AllocRatio         float64 `json:"alloc_ratio"`
	BytesRatio         float64 `json:"bytes_ratio"`
	// Payments ratios compare the frozen eager-serial exact-critical
	// auction (payments_seed) with the lazy pricing paths on the payments
	// configuration.
	PaymentsClients         int     `json:"payments_clients"`
	SpeedupPayments         float64 `json:"speedup_payments"`
	SpeedupPaymentsParallel float64 `json:"speedup_payments_parallel"`
}

// paymentsConfig records the dedicated workload the payments_* paths run
// on: exact-critical pricing re-solves the allocation per probe, so the
// sweep-scale defaults (T=50, K=20) would take hours on the eager seed.
type paymentsConfig struct {
	Clients int     `json:"clients"`
	T       int     `json:"t"`
	K       int     `json:"k"`
	Reserve float64 `json:"reserve"`
}

type report struct {
	GeneratedAt string        `json:"generated_at"`
	GoVersion   string        `json:"go_version"`
	GOOS        string        `json:"goos"`
	GOARCH      string        `json:"goarch"`
	CPUs        int           `json:"cpus"`
	BidsPerUser int           `json:"bids_per_user"`
	T           int           `json:"t"`
	K           int           `json:"k"`
	Payments    paymentsConfig `json:"payments"`
	Results     []measurement  `json:"results"`
	Summary     summary        `json:"summary"`
}

func main() {
	out := flag.String("out", "BENCH_core.json", "output file")
	sizesArg := flag.String("sizes", "100,500,1000", "comma-separated client counts")
	quick := flag.Bool("quick", false, "single iteration per benchmark (CI smoke)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the benchmark run to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file at exit")
	flag.Parse()

	if *cpuprofile != "" || *memprofile != "" {
		stop, err := obs.StartProfiles(*cpuprofile, *memprofile)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintln(os.Stderr, "benchcore: profiles:", err)
			}
		}()
	}

	// testing.Benchmark reads the (unregistered) -test.benchtime flag;
	// registering the testing flags lets us set it programmatically.
	testing.Init()
	benchtime := "2s"
	if *quick {
		benchtime = "1x"
	}
	if err := flag.Set("test.benchtime", benchtime); err != nil {
		fatal(err)
	}

	var sizes []int
	for _, s := range strings.Split(*sizesArg, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			fatal(fmt.Errorf("bad -sizes entry %q", s))
		}
		sizes = append(sizes, n)
	}

	p := workload.NewDefaultParams()
	rep := report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		CPUs:        runtime.NumCPU(),
		BidsPerUser: p.BidsPerUser,
		T:           p.T,
		K:           p.K,
	}

	paths := []struct {
		name string
		run  func(bids []afl.Bid, cfg afl.Config) func() bool
	}{
		{"seed", func(bids []afl.Bid, cfg afl.Config) func() bool {
			return func() bool {
				res, err := seedwdp.RunAuction(bids, cfg)
				return err == nil && res.Feasible
			}
		}},
		{"incremental", func(bids []afl.Bid, cfg afl.Config) func() bool {
			return func() bool {
				res, err := afl.RunAuction(bids, cfg)
				return err == nil && res.Feasible
			}
		}},
		{"incremental_concurrent", func(bids []afl.Bid, cfg afl.Config) func() bool {
			return func() bool {
				res, err := afl.RunAuctionConcurrent(bids, cfg, 0)
				return err == nil && res.Feasible
			}
		}},
		{"engine_reuse", func(bids []afl.Bid, cfg afl.Config) func() bool {
			eng, err := afl.NewEngine(bids, cfg)
			if err != nil {
				fatal(err)
			}
			return func() bool { return eng.Run().Feasible }
		}},
	}

	perPath := map[string]measurement{} // at the largest size
	for _, clients := range sizes {
		p := workload.NewDefaultParams()
		p.Clients = clients
		if clients < 200 {
			p.K = 10 // the paper's K=20 is infeasible below ~200 clients
		}
		bids, err := workload.Generate(p)
		if err != nil {
			fatal(err)
		}
		cfg := p.Config()
		for _, path := range paths {
			op := path.run(bids, cfg)
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if !op() {
						b.Fatal("sweep infeasible")
					}
				}
			})
			m := measurement{
				Path:        path.name,
				Clients:     clients,
				K:           p.K,
				Iterations:  r.N,
				NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
				AllocsPerOp: r.AllocsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
			}
			rep.Results = append(rep.Results, m)
			perPath[path.name] = m
			fmt.Fprintf(os.Stderr, "%-24s I=%-5d %12.0f ns/op %10d allocs/op %12d B/op\n",
				path.name, clients, m.NsPerOp, m.AllocsPerOp, m.BytesPerOp)
		}
	}

	// --- lazy exact-critical pricing vs the frozen eager-serial seed ---
	//
	// payments_seed is the pre-lazification baseline: internal/seedwdp
	// prices every candidate T̂_g eagerly with the blind-doubling bracket.
	// payments_eager is the retained in-tree eager reference
	// (core.RunAuctionEager, seeded brackets), payments_lazy prices only
	// the chosen T̂_g sequentially, and payments_parallel fans the
	// per-winner bisections over GOMAXPROCS workers.
	pp := workload.NewDefaultParams()
	pp.Clients, pp.T, pp.K = 200, 10, 4
	if *quick {
		pp.Clients, pp.K = 60, 3 // T stays 10: window generation needs 2J ≤ T draws
	}
	pbids, err := workload.Generate(pp)
	if err != nil {
		fatal(err)
	}
	pcfg := pp.Config()
	pcfg.PaymentRule = afl.RuleExactCritical
	pcfg.ExcludeOwnBids = true
	pcfg.ReservePrice = 10 * pp.CostHi
	rep.Payments = paymentsConfig{Clients: pp.Clients, T: pp.T, K: pp.K, Reserve: pcfg.ReservePrice}

	// One-shot sanity check before timing anything: the lazy and parallel
	// paths must reproduce the eager reference's chosen-T̂_g payments
	// bit-for-bit (the differential suite proves this over a corpus; this
	// guards the exact instance being benchmarked).
	ctx := context.Background()
	eagerRes, err := core.RunAuctionEager(pbids, pcfg)
	if err != nil || !eagerRes.Feasible {
		fatal(fmt.Errorf("payments workload infeasible under the eager reference: %v", err))
	}
	for _, workers := range []int{1, -1} {
		got, err := afl.Run(ctx, pbids, pcfg, afl.WithWorkers(workers))
		if err != nil {
			fatal(err)
		}
		if got.Tg != eagerRes.Tg || !reflect.DeepEqual(got.Winners, eagerRes.Winners) {
			fatal(fmt.Errorf("lazy pricing (workers=%d) diverges from the eager reference", workers))
		}
	}

	paymentPaths := []struct {
		name string
		op   func() bool
	}{
		{"payments_seed", func() bool {
			res, err := seedwdp.RunAuction(pbids, pcfg)
			return err == nil && res.Feasible
		}},
		{"payments_eager", func() bool {
			res, err := core.RunAuctionEager(pbids, pcfg)
			return err == nil && res.Feasible
		}},
		{"payments_lazy", func() bool {
			res, err := afl.Run(ctx, pbids, pcfg, afl.WithWorkers(1))
			return err == nil && res.Feasible
		}},
		{"payments_parallel", func() bool {
			res, err := afl.Run(ctx, pbids, pcfg, afl.WithWorkers(-1))
			return err == nil && res.Feasible
		}},
	}
	for _, path := range paymentPaths {
		op := path.op
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if !op() {
					b.Fatal("payments auction infeasible")
				}
			}
		})
		m := measurement{
			Path:        path.name,
			Clients:     pp.Clients,
			K:           pp.K,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		rep.Results = append(rep.Results, m)
		perPath[path.name] = m
		fmt.Fprintf(os.Stderr, "%-24s I=%-5d %12.0f ns/op %10d allocs/op %12d B/op\n",
			path.name, pp.Clients, m.NsPerOp, m.AllocsPerOp, m.BytesPerOp)
	}

	seed := perPath["seed"]
	ratio := func(a, b float64) float64 {
		if b <= 0 {
			return 0
		}
		return a / b
	}
	pseed := perPath["payments_seed"]
	rep.Summary = summary{
		Clients:                 seed.Clients,
		SpeedupSequential:       ratio(seed.NsPerOp, perPath["incremental"].NsPerOp),
		SpeedupConcurrent:       ratio(seed.NsPerOp, perPath["incremental_concurrent"].NsPerOp),
		SpeedupEngineReuse:      ratio(seed.NsPerOp, perPath["engine_reuse"].NsPerOp),
		AllocRatio:              ratio(float64(seed.AllocsPerOp), float64(perPath["incremental"].AllocsPerOp)),
		BytesRatio:              ratio(float64(seed.BytesPerOp), float64(perPath["incremental"].BytesPerOp)),
		PaymentsClients:         pseed.Clients,
		SpeedupPayments:         ratio(pseed.NsPerOp, perPath["payments_lazy"].NsPerOp),
		SpeedupPaymentsParallel: ratio(pseed.NsPerOp, perPath["payments_parallel"].NsPerOp),
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (seq speedup %.2fx, alloc ratio %.1fx, payments speedup %.1fx)\n",
		*out, rep.Summary.SpeedupSequential, rep.Summary.AllocRatio, rep.Summary.SpeedupPayments)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcore:", err)
	os.Exit(1)
}
