package afl_test

import (
	"fmt"
	"sync"
	"time"

	"github.com/fedauction/afl"
)

// ExampleServer_RunSession wires four in-process agents to an auctioneer
// and runs a complete session: announce → sealed bids → A_FL → training
// rounds → settlement.
func ExampleServer_RunSession() {
	rng := afl.NewRNG(10)
	data, _ := afl.GenerateSynthetic(rng, afl.SyntheticOptions{Samples: 400, Dim: 3})
	shards := afl.PartitionIID(rng, data, 4)

	job := afl.Job{Name: "demo", T: 4, K: 1, TMax: 60, Dim: 3}
	server := afl.NewServer(afl.ServerConfig{
		Job: job, L2: 0.01, Eval: data, RecvTimeout: 2 * time.Second,
	})

	conns := make(map[int]afl.Conn, 4)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		serverSide, agentSide := afl.Pipe(32)
		conns[i] = serverSide
		agent := &afl.Agent{
			ID: i,
			Bids: []afl.Bid{{
				Price: float64(5 + i), Theta: 0.5, Start: 1, End: 4, Rounds: 2,
				CompTime: 5, CommTime: 10,
			}},
			Learner:     &afl.FLClient{ID: i, Data: shards[i], Theta: 0.5, LR: 0.4},
			L2:          0.01,
			RecvTimeout: 10 * time.Second,
		}
		wg.Add(1)
		go func(a *afl.Agent, c afl.Conn) {
			defer wg.Done()
			_, _ = a.Run(c)
		}(agent, agentSide)
	}

	report, err := server.RunSession(conns)
	if err != nil {
		panic(err)
	}
	for _, c := range conns {
		c.Close()
	}
	wg.Wait()

	fmt.Println("feasible:", report.Auction.Feasible)
	fmt.Println("bidders:", report.ClientsBid)
	fmt.Println("rounds ran:", len(report.Rounds) == report.Auction.Tg)
	fmt.Println("payments settled:", report.Ledger.Total() > 0)
	// Output:
	// feasible: true
	// bidders: 4
	// rounds ran: true
	// payments settled: true
}
