package afl

import "github.com/fedauction/afl/internal/baseline"

// Comparison mechanisms from the paper's evaluation.
type (
	// Mechanism is a winner-determination heuristic comparable to
	// A_winner on the same fixed-T̂_g problem.
	Mechanism = baseline.Mechanism
	// BaselineOutcome is a baseline's solution to one WDP.
	BaselineOutcome = baseline.Outcome
	// FCFS is the first-come first-served baseline [21].
	FCFS = baseline.FCFS
	// Greedy is the static per-round-price greedy baseline [20].
	Greedy = baseline.Greedy
	// AOnline is the online payment-function mechanism adapted from [17].
	AOnline = baseline.AOnline
)

// RunBaselineOverTg wraps a baseline in the same T̂_g enumeration A_FL
// performs and returns its best feasible outcome.
func RunBaselineOverTg(m Mechanism, bids []Bid, cfg Config) (BaselineOutcome, bool) {
	return baseline.RunOverTg(m, bids, cfg)
}
