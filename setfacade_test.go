package afl_test

// Compat tests for the columnar-ingestion facade: a BidSet compiled once
// by CompileBids must be accepted uniformly by RunSet, RunBatch,
// Service.Submit and Market.Submit, under the same shared option set as
// the []Bid entry points, with bit-identical outcomes. These are the
// contracts that let the row-oriented paths stay as thin wrappers.

import (
	"context"
	"reflect"
	"testing"

	"github.com/fedauction/afl"
)

// TestRunSetMatchesRun holds RunSet to DeepEqual identity with Run across
// worker counts and the per-call payment-rule override — the options mean
// the same thing through the columnar entry point.
func TestRunSetMatchesRun(t *testing.T) {
	bids, cfg := testWorkload(t, 80, 12, 3)
	set := afl.CompileBids(bids)
	ctx := context.Background()
	want, err := afl.Run(ctx, bids, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 3, -1} {
		got, err := afl.RunSet(ctx, set, cfg, afl.WithWorkers(workers))
		if err != nil {
			t.Fatalf("RunSet(workers=%d): %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("RunSet(workers=%d) differs from Run", workers)
		}
	}
	rowRule, err := afl.Run(ctx, bids, cfg, afl.WithPaymentRule(afl.RulePayBid))
	if err != nil {
		t.Fatal(err)
	}
	setRule, err := afl.RunSet(ctx, set, cfg, afl.WithPaymentRule(afl.RulePayBid))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.PaymentRule != afl.RuleCritical {
		t.Fatalf("WithPaymentRule mutated the caller's Config: %v", cfg.PaymentRule)
	}
	if !reflect.DeepEqual(setRule, rowRule) {
		t.Fatal("RunSet WithPaymentRule differs from Run WithPaymentRule")
	}
}

// TestRunBatchInstanceSet pins the batch layer's columnar contract: a
// batch of Instances sharing one compiled Set yields outcomes DeepEqual
// to the same batch in row form — the shared handle is what enables the
// workers' cross-auction warm start, and it must be invisible in the
// results.
func TestRunBatchInstanceSet(t *testing.T) {
	bids, cfg := testWorkload(t, 60, 12, 3)
	set := afl.CompileBids(bids)
	ctx := context.Background()
	const m = 6
	rowInsts := make([]afl.Instance, m)
	setInsts := make([]afl.Instance, m)
	for i := range rowInsts {
		// Vary the config across instances so the warm start's
		// config-equivalence check is exercised in both directions.
		c := cfg
		if i%3 == 2 {
			c.PaymentRule = afl.RulePayBid
		}
		rowInsts[i] = afl.Instance{Bids: bids, Cfg: c}
		setInsts[i] = afl.Instance{Set: set, Cfg: c}
	}
	rows, err := afl.RunBatch(ctx, rowInsts, afl.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	sets, err := afl.RunBatch(ctx, setInsts, afl.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		if rows[i].Err != nil || sets[i].Err != nil {
			t.Fatalf("instance %d: errs %v / %v", i, rows[i].Err, sets[i].Err)
		}
		if !reflect.DeepEqual(rows[i].Result, sets[i].Result) {
			t.Fatalf("instance %d: Set outcome differs from Bids outcome", i)
		}
	}
}

// TestServiceSubmitSet runs a columnar instance through the long-lived
// Service and compares against serial Run.
func TestServiceSubmitSet(t *testing.T) {
	bids, cfg := testWorkload(t, 50, 10, 3)
	set := afl.CompileBids(bids)
	ctx := context.Background()
	want, err := afl.Run(ctx, bids, cfg)
	if err != nil {
		t.Fatal(err)
	}
	svc := afl.NewService(ctx, afl.WithWorkers(2), afl.WithQueue(2))
	if _, err := svc.Submit(ctx, afl.Instance{Set: set, Cfg: cfg}); err != nil {
		t.Fatal(err)
	}
	oc, ok := <-svc.Results()
	if !ok {
		t.Fatal("service closed without an outcome")
	}
	svc.Close()
	if oc.Err != nil {
		t.Fatal(oc.Err)
	}
	if !reflect.DeepEqual(oc.Result, want) {
		t.Fatal("Service.Submit(Set) outcome differs from serial Run")
	}
}

// TestMarketSubmitSet submits the same population to a volatile market
// once in row form and once in columnar form; the two committed outcome
// records must agree on everything but their sequence numbers.
func TestMarketSubmitSet(t *testing.T) {
	inst := marketWorkload(t, 4021)
	set := afl.CompileBids(inst.Bids)
	ctx := context.Background()
	m, err := afl.OpenMarket(ctx, afl.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	rowSeq, err := m.Submit(ctx, "rows", inst)
	if err != nil {
		t.Fatal(err)
	}
	setSeq, err := m.Submit(ctx, "set", afl.Instance{Set: set, Cfg: inst.Cfg})
	if err != nil {
		t.Fatal(err)
	}
	rowRec, err := m.Wait(ctx, rowSeq)
	if err != nil {
		t.Fatal(err)
	}
	setRec, err := m.Wait(ctx, setSeq)
	if err != nil {
		t.Fatal(err)
	}
	rowRec.Seq, setRec.Seq = 0, 0
	if !reflect.DeepEqual(rowRec, setRec) {
		t.Fatalf("columnar market outcome diverged from row outcome:\n rows: %+v\n  set: %+v", rowRec, setRec)
	}
	if !rowRec.Feasible || len(rowRec.Winners) == 0 {
		t.Fatalf("outcome = %+v, want feasible with winners", rowRec)
	}
}
