package afl_test

import (
	"fmt"

	"github.com/fedauction/afl"
)

// ExampleRunAuction runs A_FL on the paper's §V-B worked example bids:
// T = 3 global iterations, K = 1 participant per iteration, and three
// single-bid clients B1($2,[1,2],1), B2($6,[2,3],2), B3($5,[1,3],2).
// The paper solves the fixed T̂_g = 3 WDP (see ExampleRunWDP); the full
// enumeration discovers that T̂_g = 2 achieves the same cost 7 with the
// same winners and prefers the smaller horizon.
func ExampleRunAuction() {
	bids := []afl.Bid{
		{Client: 0, Price: 2, Theta: 0.5, Start: 1, End: 2, Rounds: 1},
		{Client: 1, Price: 6, Theta: 0.5, Start: 2, End: 3, Rounds: 2},
		{Client: 2, Price: 5, Theta: 0.5, Start: 1, End: 3, Rounds: 2},
	}
	res, err := afl.RunAuction(bids, afl.Config{T: 3, K: 1})
	if err != nil {
		panic(err)
	}
	fmt.Printf("T_g*=%d cost=%.0f\n", res.Tg, res.Cost)
	for _, w := range res.Winners {
		fmt.Printf("client %d wins: price %.0f, paid %.1f, slots %v\n",
			w.Bid.Client, w.Bid.Price, w.Payment, w.Slots)
	}
	// Output:
	// T_g*=2 cost=7
	// client 0 wins: price 2, paid 2.5, slots [1]
	// client 2 wins: price 5, paid 5.0, slots [1 2]
}

// ExampleRunWDP solves a single winner-determination problem at a fixed
// number of global iterations and prints its approximation certificate.
func ExampleRunWDP() {
	bids := []afl.Bid{
		{Client: 0, Price: 2, Theta: 0.5, Start: 1, End: 2, Rounds: 1},
		{Client: 1, Price: 6, Theta: 0.5, Start: 2, End: 3, Rounds: 2},
		{Client: 2, Price: 5, Theta: 0.5, Start: 1, End: 3, Rounds: 2},
	}
	wdp, err := afl.RunWDP(bids, 3, afl.Config{T: 3, K: 1})
	if err != nil {
		panic(err)
	}
	fmt.Printf("feasible=%v cost=%.0f winners=%d\n", wdp.Feasible, wdp.Cost, len(wdp.Winners))
	fmt.Printf("optimal cost is at least %.2f\n", wdp.Dual.Bound())
	// Output:
	// feasible=true cost=7 winners=2
	// optimal cost is at least 5.60
}

// ExampleMinTg shows the coupling between local accuracy and the number
// of global iterations: a bid with θ = 0.8 forces T_g ≥ 1/(1−0.8) = 5.
func ExampleMinTg() {
	bids := []afl.Bid{
		{Client: 0, Price: 1, Theta: 0.8, Start: 1, End: 10, Rounds: 2},
		{Client: 1, Price: 1, Theta: 0.9, Start: 1, End: 10, Rounds: 2},
	}
	fmt.Println(afl.MinTg(bids))
	// Output:
	// 5
}
