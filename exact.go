package afl

import "github.com/fedauction/afl/internal/exact"

// Exact optimization references (branch-and-bound; practical for small
// and medium winner-determination problems).
type (
	// ExactResult is a branch-and-bound outcome.
	ExactResult = exact.Result
	// ExactOptions tunes the search.
	ExactOptions = exact.Options
	// VCGResult is the Vickrey-Clarke-Groves outcome: optimal allocation
	// with externality payments.
	VCGResult = exact.VCGResult
)

// RunExact computes the optimal solution of the fixed-T̂_g WDP over the
// qualified bids by branch-and-bound.
func RunExact(bids []Bid, tg int, cfg Config, opts ExactOptions) (ExactResult, error) {
	if err := cfg.Validate(); err != nil {
		return ExactResult{}, err
	}
	if err := ValidateBids(bids, max(cfg.T, tg), cfg.K); err != nil {
		return ExactResult{}, err
	}
	return exact.SolveWDP(bids, Qualified(bids, tg, cfg), tg, cfg, opts), nil
}

// RunVCG computes the VCG outcome of the fixed-T̂_g WDP: exactly optimal
// and exactly truthful, at exponential cost — the reference point for
// A_FL's polynomial-time trade-off.
func RunVCG(bids []Bid, tg int, cfg Config, opts ExactOptions) (VCGResult, error) {
	if err := cfg.Validate(); err != nil {
		return VCGResult{}, err
	}
	if err := ValidateBids(bids, max(cfg.T, tg), cfg.K); err != nil {
		return VCGResult{}, err
	}
	return exact.SolveVCG(bids, Qualified(bids, tg, cfg), tg, cfg, opts), nil
}
