package afl_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/fedauction/afl"
)

func testWorkload(t *testing.T, clients, maxT, k int) ([]afl.Bid, afl.Config) {
	t.Helper()
	p := afl.DefaultWorkloadParams()
	p.Clients = clients
	p.T = maxT
	p.K = k
	bids, err := afl.GenerateWorkload(p)
	if err != nil {
		t.Fatal(err)
	}
	return bids, p.Config()
}

// TestRunMatchesDeprecatedEntryPoints locks in the compatibility contract
// of the facade redesign: Run is bit-identical to RunAuction and to
// RunAuctionConcurrent for every worker setting, including the negative
// (GOMAXPROCS) convention.
func TestRunMatchesDeprecatedEntryPoints(t *testing.T) {
	bids, cfg := testWorkload(t, 80, 12, 3)
	want, err := afl.RunAuction(bids, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !want.Feasible {
		t.Fatal("workload unexpectedly infeasible")
	}
	for _, workers := range []int{0, 1, 2, 7, -1} {
		got, err := afl.Run(context.Background(), bids, cfg, afl.WithWorkers(workers))
		if err != nil {
			t.Fatalf("Run(workers=%d): %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Run(workers=%d) differs from RunAuction", workers)
		}
	}
	for _, workers := range []int{0, 2} {
		legacy, err := afl.RunAuctionConcurrent(bids, cfg, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(legacy, want) {
			t.Fatalf("RunAuctionConcurrent(%d) differs from RunAuction", workers)
		}
	}
}

// TestRunWithPaymentRule checks that the per-call payment-rule override
// matches configuring the rule up front and leaves the caller's Config
// untouched.
func TestRunWithPaymentRule(t *testing.T) {
	bids, cfg := testWorkload(t, 60, 10, 3)
	override, err := afl.Run(context.Background(), bids, cfg, afl.WithPaymentRule(afl.RulePayBid))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.PaymentRule != afl.RuleCritical {
		t.Fatalf("WithPaymentRule mutated the caller's Config: %v", cfg.PaymentRule)
	}
	direct := cfg
	direct.PaymentRule = afl.RulePayBid
	want, err := afl.Run(context.Background(), bids, direct)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(override, want) {
		t.Fatal("WithPaymentRule differs from configuring the rule in Config")
	}
}

// TestRunSentinels exercises the error surface of the redesigned facade:
// ErrNoBids for an empty population, ErrInfeasible (with the diagnostic
// Result preserved) when no T̂_g admits coverage, and ErrCanceled (also
// matching the context cause) for a pre-canceled context.
func TestRunSentinels(t *testing.T) {
	cfg := afl.Config{T: 3, K: 1}
	if _, err := afl.Run(context.Background(), nil, cfg); !errors.Is(err, afl.ErrNoBids) {
		t.Fatalf("empty population: got %v, want ErrNoBids", err)
	}

	// A single bid that can never cover iteration 3 of any candidate
	// T̂_g ≥ T_0 = 2: infeasible at every horizon.
	bids := []afl.Bid{{Client: 0, Price: 2, Theta: 0.5, Start: 1, End: 2, Rounds: 1}}
	res, err := afl.Run(context.Background(), bids, cfg)
	if !errors.Is(err, afl.ErrInfeasible) {
		t.Fatalf("infeasible population: got %v, want ErrInfeasible", err)
	}
	if res.Feasible {
		t.Fatal("ErrInfeasible with a feasible Result")
	}
	if len(res.WDPs) == 0 {
		t.Fatal("ErrInfeasible dropped the per-T̂_g diagnostics")
	}

	feasible := []afl.Bid{
		{Client: 0, Price: 2, Theta: 0.5, Start: 1, End: 2, Rounds: 1},
		{Client: 1, Price: 6, Theta: 0.5, Start: 2, End: 3, Rounds: 2},
		{Client: 2, Price: 5, Theta: 0.5, Start: 1, End: 3, Rounds: 2},
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := afl.Run(ctx, feasible, cfg); !errors.Is(err, afl.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled: got %v, want ErrCanceled ∧ context.Canceled", err)
	}
}

// TestRunCancellationMidSweep cancels the context from inside the
// observer after the first WDP solve and checks that partial work is
// abandoned, the sentinel surface holds, and the worker pool does not
// leak goroutines.
func TestRunCancellationMidSweep(t *testing.T) {
	bids, cfg := testWorkload(t, 80, 12, 3)
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var once sync.Once
		var solved int
		var mu sync.Mutex
		o := afl.ObserverFunc(func(e afl.Event) {
			if e.Kind == afl.EvWDPSolved {
				mu.Lock()
				solved++
				mu.Unlock()
				once.Do(cancel)
			}
		})
		before := runtime.NumGoroutine()
		res, err := afl.Run(ctx, bids, cfg, afl.WithWorkers(workers), afl.WithObserver(o))
		if !errors.Is(err, afl.ErrCanceled) || !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: got %v, want ErrCanceled ∧ context.Canceled", workers, err)
		}
		if res.Feasible {
			t.Fatalf("workers=%d: canceled sweep returned a committed result", workers)
		}
		mu.Lock()
		n := solved
		mu.Unlock()
		// t0=2 leaves 11 candidate T̂_g values; cancellation after the
		// first solve must abandon at least some of them (the pool may
		// legitimately finish a few in-flight solves first).
		if n == 0 || n > 11 {
			t.Fatalf("workers=%d: %d WDP solves observed", workers, n)
		}
		deadline := time.Now().Add(2 * time.Second)
		for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		if g := runtime.NumGoroutine(); g > before {
			t.Fatalf("workers=%d: goroutine leak after cancellation: %d > %d", workers, g, before)
		}
		cancel()
	}
}

// TestRunCancellationMidPricing cancels the context from inside the
// observer on the first per-winner pricing event, so the sweep has
// already committed and the cancellation lands inside the lazy
// exact-critical payment stage. The sentinel surface must hold, the
// partially priced result must be abandoned, the stage must close with a
// failed pricing_done event, and neither the sweep pool nor the pricing
// pool may leak goroutines.
func TestRunCancellationMidPricing(t *testing.T) {
	bids, cfg := testWorkload(t, 80, 12, 3)
	cfg.PaymentRule = afl.RuleExactCritical
	cfg.ReservePrice = 1e6 // above every generated price: bounds the bisection bracket
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var once sync.Once
		var mu sync.Mutex
		var priced int
		var pricingFailed bool
		o := afl.ObserverFunc(func(e afl.Event) {
			switch e.Kind {
			case afl.EvWinnerPriced:
				mu.Lock()
				priced++
				mu.Unlock()
				once.Do(cancel)
			case afl.EvPricingDone:
				mu.Lock()
				pricingFailed = !e.OK
				mu.Unlock()
			}
		})
		before := runtime.NumGoroutine()
		res, err := afl.Run(ctx, bids, cfg, afl.WithWorkers(workers), afl.WithObserver(o))
		if !errors.Is(err, afl.ErrCanceled) || !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: got %v, want ErrCanceled ∧ context.Canceled", workers, err)
		}
		if res.Feasible {
			t.Fatalf("workers=%d: canceled pricing returned a committed result", workers)
		}
		mu.Lock()
		n, failed := priced, pricingFailed
		mu.Unlock()
		if n == 0 {
			t.Fatalf("workers=%d: cancellation never reached the pricing stage", workers)
		}
		if !failed {
			t.Fatalf("workers=%d: pricing_done did not report the abandoned stage", workers)
		}
		deadline := time.Now().Add(2 * time.Second)
		for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		if g := runtime.NumGoroutine(); g > before {
			t.Fatalf("workers=%d: goroutine leak after cancellation: %d > %d", workers, g, before)
		}
		cancel()
	}
}

// TestRunGoldenTrace pins the exact event stream of a sequential
// instrumented run on a fixed workload and a deterministic clock. Any
// change to the phase-event contract shows up as a diff here.
func TestRunGoldenTrace(t *testing.T) {
	bids := []afl.Bid{
		{Client: 0, Price: 2, Theta: 0.5, Start: 1, End: 2, Rounds: 1},
		{Client: 1, Price: 6, Theta: 0.5, Start: 2, End: 3, Rounds: 2},
		{Client: 2, Price: 5, Theta: 0.5, Start: 1, End: 3, Rounds: 2},
	}
	cfg := afl.Config{T: 3, K: 1}
	tr := &afl.Trace{}
	base := time.Unix(0, 0).UTC()
	calls := 0
	now := func() time.Time {
		calls++
		return base.Add(time.Duration(calls) * time.Millisecond)
	}
	if _, err := afl.Run(context.Background(), bids, cfg, afl.WithObserver(tr), afl.WithNow(now)); err != nil {
		t.Fatal(err)
	}
	const want = `auction_started tg=3 round=2 value=3 ok=false
wdp_solved tg=2 value=7 ok=true dur=1ms
wdp_solved tg=3 value=7 ok=true dur=1ms
winner_accepted tg=2 client=0 bid=0 value=2 ok=true
payment_computed tg=2 client=0 bid=0 value=2.5 ok=true
winner_accepted tg=2 client=2 bid=2 value=5 ok=true
payment_computed tg=2 client=2 bid=2 value=5 ok=true
auction_done tg=2 value=7 ok=true dur=5ms
`
	if got := tr.String(); got != want {
		t.Fatalf("trace mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestRunPricingGoldenTrace pins the exact event stream of the lazy
// pricing stage: the §V-B workload under RuleExactCritical with a
// reserve. The trace must show the sweep solving every candidate WDP
// without pricing events, then a single pricing phase over the chosen
// T̂_g — bid 0 confirmed at its Algorithm 3 seed in three probes, bid 2
// (an essential winner) priced at the reserve in two — before the
// winner/payment events report the exact-critical payments.
func TestRunPricingGoldenTrace(t *testing.T) {
	bids := []afl.Bid{
		{Client: 0, Price: 2, Theta: 0.5, Start: 1, End: 2, Rounds: 1},
		{Client: 1, Price: 6, Theta: 0.5, Start: 2, End: 3, Rounds: 2},
		{Client: 2, Price: 5, Theta: 0.5, Start: 1, End: 3, Rounds: 2},
	}
	cfg := afl.Config{T: 3, K: 1, PaymentRule: afl.RuleExactCritical, ReservePrice: 120}
	tr := &afl.Trace{}
	base := time.Unix(0, 0).UTC()
	calls := 0
	now := func() time.Time {
		calls++
		return base.Add(time.Duration(calls) * time.Millisecond)
	}
	if _, err := afl.Run(context.Background(), bids, cfg, afl.WithObserver(tr), afl.WithNow(now)); err != nil {
		t.Fatal(err)
	}
	const want = `auction_started tg=3 round=2 value=3 ok=false
wdp_solved tg=2 value=7 ok=true dur=1ms
wdp_solved tg=3 value=7 ok=true dur=1ms
pricing_started tg=2 round=1 value=2 ok=false
winner_priced tg=2 round=3 client=0 bid=0 value=2.5 ok=true dur=1ms
winner_priced tg=2 round=2 client=2 bid=2 value=120 ok=true dur=1ms
pricing_done tg=2 value=122.5 ok=true dur=5ms
winner_accepted tg=2 client=0 bid=0 value=2 ok=true
payment_computed tg=2 client=0 bid=0 value=2.5 ok=true
winner_accepted tg=2 client=2 bid=2 value=5 ok=true
payment_computed tg=2 client=2 bid=2 value=120 ok=true
auction_done tg=2 value=7 ok=true dur=11ms
`
	if got := tr.String(); got != want {
		t.Fatalf("trace mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestPricingAllocGuard locks the allocation budget of the lazy
// exact-critical pricing path against the BENCH_core.json payments_lazy
// baseline. It mirrors the benchcore payments configuration so the
// counts are comparable, and skips when the baseline has not been
// recorded yet (run `make bench-json`).
func TestPricingAllocGuard(t *testing.T) {
	p := afl.DefaultWorkloadParams()
	p.Clients = 200
	p.T = 10
	p.K = 4
	bids, err := afl.GenerateWorkload(p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := p.Config()
	cfg.PaymentRule = afl.RuleExactCritical
	cfg.ExcludeOwnBids = true
	cfg.ReservePrice = 10 * p.CostHi
	ctx := context.Background()
	if _, err := afl.Run(ctx, bids, cfg, afl.WithWorkers(1)); err != nil {
		t.Fatal(err)
	}
	got := testing.AllocsPerRun(5, func() {
		if _, err := afl.Run(ctx, bids, cfg, afl.WithWorkers(1)); err != nil {
			t.Error(err)
		}
	})

	data, err := os.ReadFile("BENCH_core.json")
	if err != nil {
		t.Skipf("no BENCH_core.json baseline: %v", err)
	}
	var rep struct {
		Results []struct {
			Path        string `json:"path"`
			Clients     int    `json:"clients"`
			AllocsPerOp int64  `json:"allocs_per_op"`
		} `json:"results"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("parse BENCH_core.json: %v", err)
	}
	for _, r := range rep.Results {
		if r.Path == "payments_lazy" && r.Clients == p.Clients {
			// Same slack policy as the engine_reuse guard: pool hit rates
			// jitter, but a regression that re-allocates probe slices per
			// bisection step would blow well past a quarter of headroom.
			limit := float64(r.AllocsPerOp)*1.25 + 64
			if got > limit {
				t.Fatalf("lazy pricing run allocates %.0f/op, baseline %d (limit %.0f)", got, r.AllocsPerOp, limit)
			}
			return
		}
	}
	t.Skip("no payments_lazy baseline for this population size")
}

// TestNilObserverAllocGuard asserts the zero-cost-when-nil guarantee of
// the observability redesign: the context-aware RunCtx path with no
// observer allocates no more than the pre-redesign Engine.Run hot path,
// and that hot path itself stays within the BENCH_core.json baseline.
func TestNilObserverAllocGuard(t *testing.T) {
	// Mirror the benchcore I=100 configuration (T=50, K=10) so the
	// BENCH_core.json engine_reuse baseline is comparable.
	bids, cfg := testWorkload(t, 100, 50, 10)
	eng, err := afl.NewEngine(bids, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !eng.Run().Feasible {
		t.Fatal("guard workload infeasible")
	}
	// Resolve the BENCH_core.json engine_reuse baseline up front so one
	// measurement loop can retry both bounds together.
	limit, haveBaseline, skip := engineReuseLimit(t, len(clientSet(bids)))

	// Allocation counts depend on pool hit rates: a GC mid-measurement
	// flushes the shape pools and that run pays a full arena rebuild,
	// tripping the guard spuriously (seen under -race, where everything
	// allocates more and collections land more often). The guarantee
	// being guarded is the warm hot path, so measure the two paths as a
	// back-to-back pair and retry while either bound fails from a flush:
	// an instrumented hot path (which at least doubles the count via
	// timing and event boxing) still fails every attempt.
	base, withCtx := math.Inf(1), math.Inf(1)
	pairOK, baseOK := false, false
	for attempt := 0; attempt < 5 && !(pairOK && baseOK); attempt++ {
		b := testing.AllocsPerRun(5, func() { eng.Run() })
		c := testing.AllocsPerRun(5, func() {
			if _, err := eng.RunCtx(context.Background(), afl.RunOptions{}); err != nil {
				t.Error(err)
			}
		})
		base, withCtx = math.Min(base, b), math.Min(withCtx, c)
		// RunCtx adds only the options plumbing; allow a handful of
		// allocs of slack over the uninstrumented path.
		pairOK = pairOK || c <= b+8
		baseOK = !haveBaseline || base <= limit
	}
	if !pairOK {
		t.Fatalf("nil-observer RunCtx allocates %.0f/op vs Run %.0f/op", withCtx, base)
	}
	if !baseOK {
		t.Fatalf("Engine.Run allocates %.0f/op, limit %.0f", base, limit)
	}
	if !haveBaseline {
		t.Skip(skip)
	}
}

// engineReuseLimit reads the engine_reuse allocs/op baseline for the
// given population size from BENCH_core.json and returns the guard
// limit. Allocation counts jitter with pool hit rates; a quarter of
// slack still catches an instrumented hot path (which would at least
// double the count via timing and event boxing). When no baseline is
// available, ok is false and skip carries the reason.
func engineReuseLimit(t *testing.T, clients int) (limit float64, ok bool, skip string) {
	t.Helper()
	data, err := os.ReadFile("BENCH_core.json")
	if err != nil {
		return 0, false, fmt.Sprintf("no BENCH_core.json baseline: %v", err)
	}
	var rep struct {
		Results []struct {
			Path        string `json:"path"`
			Clients     int    `json:"clients"`
			AllocsPerOp int64  `json:"allocs_per_op"`
		} `json:"results"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("parse BENCH_core.json: %v", err)
	}
	for _, r := range rep.Results {
		if r.Path == "engine_reuse" && r.Clients == clients {
			return float64(r.AllocsPerOp)*1.25 + 64, true, ""
		}
	}
	return 0, false, "no engine_reuse baseline for this population size"
}

// minAllocsPerRun returns the lowest testing.AllocsPerRun over reps
// measurement batches. Alloc guards use it so one GC-induced pool flush
// inside a batch (which makes a run pay a full arena rebuild) cannot
// fail a guard whose contract is about the warm hot path.
func minAllocsPerRun(runs, reps int, f func()) float64 {
	best := testing.AllocsPerRun(runs, f)
	for i := 1; i < reps; i++ {
		if a := testing.AllocsPerRun(runs, f); a < best {
			best = a
		}
	}
	return best
}

func clientSet(bids []afl.Bid) map[int]bool {
	set := make(map[int]bool)
	for _, b := range bids {
		set[b.Client] = true
	}
	return set
}
