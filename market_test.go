package afl_test

import (
	"bytes"
	"context"
	"errors"
	"testing"

	afl "github.com/fedauction/afl"
)

// marketWorkload draws one feasible auction instance for market tests.
func marketWorkload(t testing.TB, seed int64) afl.Instance {
	t.Helper()
	p := afl.DefaultWorkloadParams()
	p.Seed = seed
	p.Clients = 12
	p.T = 10
	p.K = 3
	bids, err := afl.GenerateWorkload(p)
	if err != nil {
		t.Fatal(err)
	}
	return afl.Instance{Bids: bids, Cfg: afl.Config{T: p.T, K: p.K}}
}

// TestOpenMarketDurableRoundtrip pins the facade wiring end to end:
// OpenMarket with WithDurability solves submissions, survives a close,
// and reopens to byte-identical state.
func TestOpenMarketDurableRoundtrip(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	m, err := afl.OpenMarket(ctx, afl.WithDurability(dir), afl.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	seq, err := m.Submit(ctx, "facade", marketWorkload(t, 4020))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := m.Wait(ctx, seq)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Feasible || len(rec.Winners) == 0 {
		t.Fatalf("outcome = %+v, want feasible with winners", rec)
	}
	snap := m.Snapshot()
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(ctx, "facade", marketWorkload(t, 4020)); !errors.Is(err, afl.ErrMarketClosed) {
		t.Fatalf("Submit after Close = %v, want ErrMarketClosed", err)
	}

	m2, err := afl.OpenMarket(ctx, afl.WithDurability(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if got := m2.Snapshot(); !bytes.Equal(got, snap) {
		t.Fatalf("reopened snapshot diverged:\n got %s\nwant %s", got, snap)
	}
	if _, _, err := m2.Outcome(99); !errors.Is(err, afl.ErrUnknownSeq) {
		t.Fatalf("Outcome(unknown) = %v, want ErrUnknownSeq", err)
	}
}
