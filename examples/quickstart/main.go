// Command quickstart runs one A_FL auction end to end on a small
// generated bid population and prints the outcome: the chosen number of
// global iterations, the winners with their schedules and payments, and
// the per-instance approximation certificate.
package main

import (
	"fmt"
	"log"

	"github.com/fedauction/afl"
)

func main() {
	// A small marketplace: 60 clients, 3 bids each, 12 global iterations
	// maximum, 4 participants needed per iteration.
	params := afl.DefaultWorkloadParams()
	params.Clients = 60
	params.BidsPerUser = 3
	params.T = 12
	params.K = 4
	params.Seed = 42

	bids, err := afl.GenerateWorkload(params)
	if err != nil {
		log.Fatalf("generate workload: %v", err)
	}
	cfg := params.Config()

	res, err := afl.RunAuction(bids, cfg)
	if err != nil {
		log.Fatalf("auction: %v", err)
	}
	if !res.Feasible {
		log.Fatal("no feasible schedule: not enough supply")
	}

	fmt.Printf("A_FL auction over %d bids from %d clients\n", len(bids), params.Clients)
	fmt.Printf("  chosen global iterations T_g* = %d (feasible range starts at %d)\n",
		res.Tg, afl.MinTg(bids))
	fmt.Printf("  social cost  = %.2f\n", res.Cost)
	fmt.Printf("  payments     = %.2f\n", res.TotalPayment())
	fmt.Printf("  winners      = %d, θ_max = %.2f\n", len(res.Winners), res.ThetaMax())
	fmt.Printf("  certificate  : cost ≤ %.3f × optimal (H_Tg·ω bound, Lemma 5)\n", res.Dual.RatioBound)
	fmt.Printf("  dual bound   : optimal cost ≥ %.2f → empirical ratio ≤ %.3f\n",
		res.Dual.Objective, res.Cost/res.Dual.Objective)
	fmt.Println()

	fmt.Println("winners (client, bid, price → payment, scheduled iterations):")
	for _, w := range res.Winners {
		fmt.Printf("  client %3d bid %d: %6.2f → %6.2f  slots %v\n",
			w.Bid.Client, w.Bid.Index, w.Bid.Price, w.Payment, w.Slots)
	}

	// Defense in depth: re-verify every ILP (6) constraint before acting
	// on the outcome.
	if err := afl.CheckSolution(bids, res, cfg); err != nil {
		log.Fatalf("solution failed verification: %v", err)
	}
	fmt.Println("\nsolution verified against all ILP (6) constraints ✓")
}
