// Command truthfulness demonstrates the auction's incentive properties
// empirically: one client sweeps misreported prices around its true cost
// and the program tabulates the utility it would obtain under three
// payment rules — the paper's Algorithm 3 critical payment, the exact
// Myerson threshold payment, and naive pay-as-bid. Under the truthful
// rules the utility is (weakly) maximized at the true cost; pay-as-bid
// visibly rewards overbidding.
package main

import (
	"fmt"
	"log"

	"github.com/fedauction/afl"
)

func main() {
	params := afl.DefaultWorkloadParams()
	params.Clients = 80
	params.BidsPerUser = 1 // single-minded: the setting the theory covers
	params.T = 12
	params.K = 4
	params.Seed = 11
	bids, err := afl.GenerateWorkload(params)
	if err != nil {
		log.Fatal(err)
	}

	rules := []struct {
		name string
		rule afl.PaymentRule
	}{
		{"Algorithm 3 (paper)", afl.RuleCritical},
		{"exact critical value", afl.RuleExactCritical},
		{"pay-as-bid", afl.RulePayBid},
	}

	// Pick a client that wins under truthful bidding so the sweep is
	// interesting.
	baseCfg := params.Config()
	baseRes, err := afl.RunAuction(bids, baseCfg)
	if err != nil || !baseRes.Feasible || len(baseRes.Winners) == 0 {
		log.Fatalf("base auction failed: %v", err)
	}
	victim := baseRes.Winners[0].BidIndex
	trueCost := bids[victim].TrueCost
	fmt.Printf("client %d sweeps claimed prices around its true cost %.2f\n\n",
		bids[victim].Client, trueCost)

	factors := []float64{0.25, 0.5, 0.75, 0.9, 1.0, 1.1, 1.5, 2.0, 3.0}
	fmt.Printf("%-10s", "claimed")
	for _, r := range rules {
		fmt.Printf("  %22s", r.name)
	}
	fmt.Println()
	for _, f := range factors {
		claimed := trueCost * f
		fmt.Printf("%-10.2f", claimed)
		for _, r := range rules {
			cfg := baseCfg
			cfg.PaymentRule = r.rule
			cfg.ExcludeOwnBids = true
			cfg.ReservePrice = 10 * params.CostHi
			u := utility(bids, victim, claimed, cfg)
			marker := " "
			if f == 1.0 {
				marker = "←"
			}
			fmt.Printf("  %20.3f %s", u, marker)
		}
		fmt.Println()
	}
	fmt.Println("\n(utilities at the arrow are truthful bidding)")
	fmt.Println(" - exact critical value: provably never exceeds the truthful utility")
	fmt.Println(" - Algorithm 3 (paper): critical only within the selection round; rare")
	fmt.Println("   profitable overbids can appear when deferral shrinks a rival's")
	fmt.Println("   marginal value — the reproduction finding documented in EXPERIMENTS.md")
	fmt.Println(" - pay-as-bid: rewards overbidding, as expected of a non-truthful rule")
}

// utility re-runs the auction with one overridden claimed price and
// returns the victim client's utility.
func utility(bids []afl.Bid, victim int, claimed float64, cfg afl.Config) float64 {
	mod := make([]afl.Bid, len(bids))
	copy(mod, bids)
	mod[victim].Price = claimed
	res, err := afl.RunAuction(mod, cfg)
	if err != nil || !res.Feasible {
		return 0
	}
	if w, ok := res.WinnerByClient(bids[victim].Client); ok {
		return w.Payment - bids[victim].TrueCost
	}
	return 0
}
