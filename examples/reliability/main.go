// Command reliability plans a federated job against unreliable clients —
// the paper's §VIII future-work scenario. It prices coverage redundancy:
// for each redundancy level r the auction procures K+r participants per
// global iteration, a Monte Carlo estimates the probability that every
// round still collects K updates under client dropout, and the round
// simulator reports the wall-clock makespan under hardware jitter. The
// output is the cost/reliability menu an operator would choose from.
package main

import (
	"fmt"
	"log"

	"github.com/fedauction/afl"
)

const (
	dropoutProb = 0.15
	mcRuns      = 500
)

func main() {
	params := afl.DefaultWorkloadParams()
	params.Clients = 300
	params.T = 15
	params.K = 5
	params.Seed = 12
	bids, err := afl.GenerateWorkload(params)
	if err != nil {
		log.Fatal(err)
	}
	rng := afl.NewRNG(99)

	fmt.Printf("planning a K=%d job over %d clients, dropout probability %.0f%%\n\n",
		params.K, params.Clients, 100*dropoutProb)
	fmt.Println("redundancy  T_g  winners  social cost  payments  P(all rounds ≥K)  makespan")
	for _, r := range []int{0, 1, 2, 3, 5} {
		cfg := params.Config()
		cfg.K = params.K + r
		res, err := afl.RunAuction(bids, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if !res.Feasible {
			fmt.Printf("%10d  insufficient supply\n", r)
			continue
		}
		// Monte Carlo: per round, scheduled participants drop out i.i.d.;
		// the job succeeds when every round keeps ≥ K survivors.
		scheduled := make([]int, res.Tg)
		for _, w := range res.Winners {
			for _, t := range w.Slots {
				scheduled[t-1]++
			}
		}
		success := 0
		for run := 0; run < mcRuns; run++ {
			ok := true
			for _, n := range scheduled {
				alive := 0
				for i := 0; i < n; i++ {
					if !rng.Bernoulli(dropoutProb) {
						alive++
					}
				}
				if alive < params.K {
					ok = false
					break
				}
			}
			if ok {
				success++
			}
		}
		sim, err := afl.SimulateRounds(res, params.K, afl.RoundSimOptions{
			TMax: params.TMax, Jitter: 0.15, Seed: 7,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%10d  %3d  %7d  %11.1f  %8.1f  %16.3f  %8.1f\n",
			r, res.Tg, len(res.Winners), res.Cost, res.TotalPayment(),
			float64(success)/mcRuns, sim.Makespan)
	}
	fmt.Println("\nhigher redundancy buys completion probability with social cost;")
	fmt.Println("the sweet spot is where P(all rounds ≥K) crosses your SLA.")
}
