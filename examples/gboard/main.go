// Command gboard simulates the paper's motivating scenario (§I): a
// Gboard-style federated job where phones train a suggestion model on
// private on-device data. The suggestion task is multiclass (predict one
// of several candidate words), so the model is a softmax classifier. The
// cloud server procures participation with the A_FL auction and then
// actually executes the winning schedule with a FedAvg simulation: every
// winner trains its local shard to the local accuracy θ it bid, in
// exactly the global iterations it was scheduled for.
package main

import (
	"fmt"
	"log"

	"github.com/fedauction/afl"
)

const (
	numClients = 40
	featDim    = 6
	classes    = 4
	dim        = classes * featDim // flattened softmax weights
	maxT       = 16
	coverageK  = 5
)

func main() {
	rng := afl.NewRNG(7)

	// Private on-device data: one non-IID shard per phone (class-skewed,
	// as typing habits would be).
	full, _ := afl.GenerateSyntheticMulti(rng, afl.MultiSyntheticOptions{
		Samples: 4000, Dim: featDim, Classes: classes, LabelNoise: 0.05,
	})
	shards := afl.PartitionMultiNonIID(rng, full, numClients, 0.6)

	// Each phone derives its bid from its real circumstances: battery
	// (rounds), owner schedule (window), hardware (timing), and the local
	// accuracy it is prepared to reach.
	var bids []afl.Bid
	learners := make(map[int]*afl.MultiFLClient)
	for c := 0; c < numClients; c++ {
		theta := rng.FloatRange(0.35, 0.75)
		start := rng.IntRange(1, maxT/4)
		end := rng.IntRange(3*maxT/4, maxT)
		rounds := rng.IntRange(3, end-start)
		comp := rng.FloatRange(5, 10)
		comm := rng.FloatRange(10, 15)
		cost := 0.4*afl.PaperLocalIters(theta)*comp + 0.5*comm*float64(rounds)
		bids = append(bids, afl.Bid{
			Client: c, Price: cost, Theta: theta,
			Start: start, End: end, Rounds: rounds,
			CompTime: comp, CommTime: comm,
		})
		learners[c] = &afl.MultiFLClient{ID: c, Data: shards[c], Theta: theta, LR: 0.4}
	}

	cfg := afl.Config{T: maxT, K: coverageK, TMax: 60}
	res, err := afl.RunAuction(bids, cfg)
	if err != nil {
		log.Fatalf("auction: %v", err)
	}
	if !res.Feasible {
		log.Fatal("auction infeasible: relax K or extend T")
	}
	fmt.Printf("auction: T_g*=%d, %d winners, social cost %.1f, payments %.1f (ratio bound %.2f)\n",
		res.Tg, len(res.Winners), res.Cost, res.TotalPayment(), res.Dual.RatioBound)

	// Execute the schedule the auction produced.
	schedule := afl.ScheduleFromResult(res)
	train, err := afl.TrainMulti(learners, schedule, full, afl.TrainConfig{
		Dim: dim, Rounds: res.Tg, Epsilon: 0.1, L2: 0.01, Seed: 7,
	})
	if err != nil {
		log.Fatalf("training: %v", err)
	}

	fmt.Println("\nround  participants  local-iters  ‖∇J‖      loss    accuracy")
	for _, h := range train.History {
		fmt.Printf("%5d  %12d  %11d  %7.4f  %6.4f  %7.3f\n",
			h.Round, len(h.Participants), h.LocalIters, h.GradNorm, h.Loss, h.Accuracy)
	}
	final := train.History[len(train.History)-1]
	fmt.Printf("\nconverged=%v after %d rounds; final accuracy %.3f\n",
		train.Converged, train.RoundsRun, final.Accuracy)

	// The economics: every winner walks away with non-negative utility.
	fmt.Println("\nwinner utilities (payment − true cost):")
	for _, w := range res.Winners {
		fmt.Printf("  client %2d: %+.2f\n", w.Bid.Client, w.Utility())
	}
}
