// Command marketplace runs the networked auction platform of Fig. 1: an
// auctioneer server and client agents exchanging protocol messages —
// announce, sealed bids, awards, training rounds, settlement — over
// in-process connections (default) or real TCP sockets (-tcp). One client
// is configured to drop out mid-training to show the settlement rule:
// clients that break their schedule forfeit payment.
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"github.com/fedauction/afl"
)

const (
	numAgents = 10
	dim       = 6
)

func main() {
	useTCP := flag.Bool("tcp", false, "run over real TCP sockets instead of in-process pipes")
	flag.Parse()

	rng := afl.NewRNG(3)
	full, _ := afl.GenerateSynthetic(rng, afl.SyntheticOptions{Samples: 1500, Dim: dim})
	shards := afl.PartitionIID(rng, full, numAgents)

	job := afl.Job{Name: "marketplace-demo", T: 8, K: 3, TMax: 60, Dim: dim}
	server := afl.NewServer(afl.ServerConfig{
		Job:         job,
		L2:          0.01,
		Eval:        full,
		RecvTimeout: 2 * time.Second,
	})

	agents := make([]*afl.Agent, numAgents)
	for i := 0; i < numAgents; i++ {
		theta := rng.FloatRange(0.4, 0.7)
		// Wide windows so K-coverage of the late iterations stays
		// feasible with a handful of agents.
		start := rng.IntRange(1, 2)
		end := rng.IntRange(job.T-2, job.T)
		agents[i] = &afl.Agent{
			ID: i,
			Bids: []afl.Bid{{
				Price: rng.FloatRange(10, 30), Theta: theta,
				Start: start, End: end, Rounds: rng.IntRange(3, end-start),
				CompTime: rng.FloatRange(5, 10), CommTime: rng.FloatRange(10, 15),
			}},
			Learner:     &afl.FLClient{ID: i, Data: shards[i], Theta: theta, LR: 0.4},
			L2:          0.01,
			RecvTimeout: 10 * time.Second,
		}
	}
	// Agent 2 will abandon the job after its first round.
	agents[2].Behavior.DropAfterRounds = 1
	agents[2].Bids[0].Price = 5 // cheap enough to win

	serverConns := make(map[int]afl.Conn, numAgents)
	agentConns := make([]afl.Conn, numAgents)
	if *useTCP {
		accepted := make(chan afl.Conn, numAgents)
		addr, stop, err := afl.Listen("127.0.0.1:0", numAgents, func(c afl.Conn) { accepted <- c })
		if err != nil {
			log.Fatal(err)
		}
		defer stop()
		fmt.Printf("auctioneer listening on %s\n", addr)
		for i := range agents {
			conn, err := afl.Dial(addr, time.Second)
			if err != nil {
				log.Fatal(err)
			}
			agentConns[i] = conn
			serverConns[i] = <-accepted
		}
	} else {
		for i := range agents {
			sc, ac := afl.Pipe(64)
			serverConns[i] = sc
			agentConns[i] = ac
		}
	}

	reports := make([]afl.AgentReport, numAgents)
	var wg sync.WaitGroup
	for i, a := range agents {
		wg.Add(1)
		go func(i int, a *afl.Agent) {
			defer wg.Done()
			r, err := a.Run(agentConns[i])
			if err != nil {
				log.Printf("agent %d: %v", i, err)
			}
			reports[i] = r
		}(i, a)
	}

	session, err := server.RunSession(serverConns)
	if err != nil {
		log.Fatalf("server: %v", err)
	}
	for _, c := range serverConns {
		c.Close()
	}
	wg.Wait()

	fmt.Printf("\nauction: feasible=%v T_g=%d cost=%.1f winners=%d (from %d bidders)\n",
		session.Auction.Feasible, session.Auction.Tg, session.Auction.Cost,
		len(session.Auction.Winners), session.ClientsBid)
	fmt.Println("\ntraining rounds:")
	for _, r := range session.Rounds {
		fmt.Printf("  round %d: scheduled %v responded %v failed %v acc %.3f\n",
			r.Iteration, r.Scheduled, r.Responded, r.Failed, r.Accuracy)
	}
	fmt.Println("\nsettlement ledger:")
	fmt.Print(session.Ledger.String())
	fmt.Println("agent-side view:")
	for i, r := range reports {
		status := "lost"
		if r.Won {
			status = fmt.Sprintf("won, ran %d rounds", r.RoundsRun)
		}
		fmt.Printf("  agent %d: %s, paid %.2f %s\n", i, status, r.Paid, r.PayReason)
	}
}
