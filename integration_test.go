package afl_test

// Integration tests exercising the public facade end to end: workload →
// auction → validation → scheduling → federated training → marketplace
// session — the pipeline a downstream user runs.

import (
	"sync"
	"testing"
	"time"

	"github.com/fedauction/afl"
)

func TestPublicAuctionPipeline(t *testing.T) {
	p := afl.DefaultWorkloadParams()
	p.Clients = 150
	p.T = 20
	p.K = 5
	p.Seed = 3
	bids, err := afl.GenerateWorkload(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := afl.ValidateBids(bids, p.T, p.K); err != nil {
		t.Fatal(err)
	}
	cfg := p.Config()
	res, err := afl.RunAuction(bids, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("default-shaped instance should be feasible")
	}
	if err := afl.CheckSolution(bids, res, cfg); err != nil {
		t.Fatal(err)
	}
	if res.Tg < afl.MinTg(bids) || res.Tg > p.T {
		t.Fatalf("T_g*=%d outside [%d,%d]", res.Tg, afl.MinTg(bids), p.T)
	}
	if res.TotalPayment() < res.Cost {
		t.Fatalf("payments %.2f below cost %.2f (IR must push them above)", res.TotalPayment(), res.Cost)
	}
	if res.Dual.RatioBound < 1 {
		t.Fatalf("ratio bound %v < 1", res.Dual.RatioBound)
	}
	// The full WDP trace is exposed for Fig. 7-style analyses.
	if len(res.WDPs) == 0 {
		t.Fatal("WDP trace missing")
	}
}

func TestPublicBaselinesComparable(t *testing.T) {
	p := afl.DefaultWorkloadParams()
	p.Clients = 200
	p.T = 20
	p.K = 5
	p.Seed = 4
	bids, err := afl.GenerateWorkload(p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := p.Config()
	res, err := afl.RunAuction(bids, cfg)
	if err != nil || !res.Feasible {
		t.Fatalf("A_FL failed: %v", err)
	}
	for _, m := range []afl.Mechanism{afl.FCFS{}, afl.Greedy{}, afl.AOnline{}} {
		out, ok := afl.RunBaselineOverTg(m, bids, cfg)
		if !ok {
			t.Fatalf("%s infeasible on a feasible instance", m.Name())
		}
		if res.Cost > out.Cost+1e-9 {
			t.Fatalf("A_FL cost %.2f above %s cost %.2f", res.Cost, m.Name(), out.Cost)
		}
	}
}

func TestPublicAuctionToTraining(t *testing.T) {
	rng := afl.NewRNG(5)
	const clients, dim = 30, 5
	full, _ := afl.GenerateSynthetic(rng, afl.SyntheticOptions{Samples: 1500, Dim: dim})
	shards := afl.PartitionNonIID(rng, full, clients, 0.5)

	var bids []afl.Bid
	learners := make(map[int]*afl.FLClient)
	for c := 0; c < clients; c++ {
		theta := rng.FloatRange(0.4, 0.7)
		bids = append(bids, afl.Bid{
			Client: c, Price: rng.FloatRange(10, 50), Theta: theta,
			Start: 1, End: 10, Rounds: rng.IntRange(2, 6),
			CompTime: 6, CommTime: 12,
		})
		learners[c] = &afl.FLClient{ID: c, Data: shards[c], Theta: theta, LR: 0.5}
	}
	cfg := afl.Config{T: 10, K: 4, TMax: 60}
	res, err := afl.RunAuction(bids, cfg)
	if err != nil || !res.Feasible {
		t.Fatalf("auction failed: %v", err)
	}
	schedule := afl.ScheduleFromResult(res)
	if len(schedule) != res.Tg {
		t.Fatalf("schedule rounds %d ≠ T_g %d", len(schedule), res.Tg)
	}
	for r, ids := range schedule {
		if len(ids) < cfg.K {
			t.Fatalf("round %d has %d participants < K", r+1, len(ids))
		}
	}
	train, err := afl.Train(learners, schedule, full, afl.TrainConfig{
		Dim: dim, Rounds: res.Tg, L2: 0.01, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if train.RoundsRun != res.Tg {
		t.Fatalf("ran %d rounds, want %d", train.RoundsRun, res.Tg)
	}
	final := train.History[len(train.History)-1]
	if final.Accuracy < 0.7 {
		t.Fatalf("final accuracy %.3f too low", final.Accuracy)
	}
	if afl.ModelAccuracy(train.Weights, full) != final.Accuracy {
		t.Fatal("ModelAccuracy disagrees with history")
	}
	if afl.ModelLoss(train.Weights, full, 0.01) <= 0 {
		t.Fatal("loss must be positive")
	}
}

func TestPublicMarketplaceSession(t *testing.T) {
	rng := afl.NewRNG(6)
	const agents, dim = 6, 4
	full, _ := afl.GenerateSynthetic(rng, afl.SyntheticOptions{Samples: 600, Dim: dim})
	shards := afl.PartitionIID(rng, full, agents)
	job := afl.Job{Name: "it", T: 5, K: 2, TMax: 60, Dim: dim}
	server := afl.NewServer(afl.ServerConfig{Job: job, L2: 0.01, Eval: full, RecvTimeout: 2 * time.Second})

	conns := make(map[int]afl.Conn, agents)
	reports := make([]afl.AgentReport, agents)
	var wg sync.WaitGroup
	for i := 0; i < agents; i++ {
		sc, ac := afl.Pipe(32)
		conns[i] = sc
		theta := rng.FloatRange(0.4, 0.6)
		a := &afl.Agent{
			ID: i,
			Bids: []afl.Bid{{
				Price: rng.FloatRange(5, 20), Theta: theta,
				Start: 1, End: 5, Rounds: 3, CompTime: 5, CommTime: 10,
			}},
			Learner:     &afl.FLClient{ID: i, Data: shards[i], Theta: theta, LR: 0.4},
			L2:          0.01,
			RecvTimeout: 10 * time.Second,
		}
		wg.Add(1)
		go func(i int, a *afl.Agent, c afl.Conn) {
			defer wg.Done()
			r, err := a.Run(c)
			if err != nil {
				t.Errorf("agent %d: %v", i, err)
			}
			reports[i] = r
		}(i, a, ac)
	}
	session, err := server.RunSession(conns)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range conns {
		c.Close()
	}
	wg.Wait()
	if !session.Auction.Feasible {
		t.Fatal("session auction infeasible")
	}
	if session.Ledger.Total() <= 0 {
		t.Fatal("no payments settled")
	}
	paid := 0.0
	for _, r := range reports {
		paid += r.Paid
	}
	if paid != session.Ledger.Total() {
		t.Fatalf("agents saw %.2f, ledger says %.2f", paid, session.Ledger.Total())
	}
}
