package afl_test

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"github.com/fedauction/afl"
)

func TestFacadeAuctionHelpers(t *testing.T) {
	bids := []afl.Bid{
		{Client: 0, Price: 2, Theta: 0.5, Start: 1, End: 2, Rounds: 1},
		{Client: 1, Price: 6, Theta: 0.5, Start: 2, End: 3, Rounds: 2},
		{Client: 2, Price: 5, Theta: 0.5, Start: 1, End: 3, Rounds: 2},
	}
	cfg := afl.Config{T: 3, K: 1}
	if err := afl.ValidateBids(bids, cfg.T, cfg.K); err != nil {
		t.Fatal(err)
	}
	if got := afl.MinTg(bids); got != 2 {
		t.Fatalf("MinTg = %d", got)
	}
	if got := afl.Qualified(bids, 3, cfg); len(got) != 3 {
		t.Fatalf("Qualified = %v", got)
	}
	wdp, err := afl.RunWDP(bids, 3, cfg)
	if err != nil || !wdp.Feasible || wdp.Cost != 7 {
		t.Fatalf("RunWDP = %+v, %v", wdp, err)
	}
	if got := afl.PaperLocalIters(0.5); got != 5 {
		t.Fatalf("PaperLocalIters = %v", got)
	}
	f := afl.LogLocalIters(3)
	if got := f(0.5); math.Abs(got-3*math.Log(2)) > 1e-12 {
		t.Fatalf("LogLocalIters = %v", got)
	}
	if afl.RuleCritical.String() != "critical" {
		t.Fatal("payment rule alias broken")
	}
	if afl.CostUniform.String() != "uniform" || afl.CostResource.String() != "resource" {
		t.Fatal("cost model aliases broken")
	}
}

func TestFacadeConcurrentAuction(t *testing.T) {
	p := afl.DefaultWorkloadParams()
	p.Clients = 80
	p.T = 12
	p.K = 3
	bids, err := afl.GenerateWorkload(p)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := afl.RunAuction(bids, p.Config())
	if err != nil {
		t.Fatal(err)
	}
	par, err := afl.RunAuctionConcurrent(bids, p.Config(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Feasible != par.Feasible || seq.Cost != par.Cost || seq.Tg != par.Tg {
		t.Fatalf("concurrent result differs: %+v vs %+v", par, seq)
	}
}

func TestFacadeRoundSimulation(t *testing.T) {
	p := afl.DefaultWorkloadParams()
	p.Clients = 80
	p.T = 10
	p.K = 3
	bids, err := afl.GenerateWorkload(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := afl.RunAuction(bids, p.Config())
	if err != nil || !res.Feasible {
		t.Fatalf("auction failed: %v", err)
	}
	sim, err := afl.SimulateRounds(res, p.K, afl.RoundSimOptions{TMax: p.TMax, Jitter: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(sim.Rounds) != res.Tg || sim.Makespan <= 0 {
		t.Fatalf("simulation = %+v", sim)
	}
}

func TestFacadeErrNoBids(t *testing.T) {
	if _, err := afl.RunAuction(nil, afl.Config{T: 3, K: 1}); err == nil {
		t.Fatal("expected error")
	}
	if afl.ErrNoBids == nil {
		t.Fatal("ErrNoBids must be exported")
	}
}

func TestFacadeOnlineMechanism(t *testing.T) {
	p := afl.DefaultWorkloadParams()
	p.Clients = 60
	p.T = 10
	p.K = 2
	bids, err := afl.GenerateWorkload(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := afl.RunOnline(bids, afl.ArrivalByStart(bids), afl.OnlineConfig{Tg: 10, K: 2, L: 2, U: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage < 0 || res.Coverage > 1 {
		t.Fatalf("coverage %v", res.Coverage)
	}
	for _, w := range res.Winners {
		if w.Payment < w.Bid.Price-1e-9 {
			t.Fatalf("online winner paid below cost: %+v", w)
		}
	}
}

func TestFacadeMulticlassTraining(t *testing.T) {
	rng := afl.NewRNG(8)
	ds, truth := afl.GenerateSyntheticMulti(rng, afl.MultiSyntheticOptions{Samples: 600, Dim: 4, Classes: 3})
	if acc := afl.SoftmaxModelAccuracy(truth, ds); acc < 0.6 {
		t.Fatalf("ground truth accuracy %v", acc)
	}
	shards := afl.PartitionMultiNonIID(rng, ds, 5, 0.5)
	clients := map[int]*afl.MultiFLClient{}
	for i, s := range shards {
		clients[i] = &afl.MultiFLClient{ID: i, Data: s, Theta: 0.5, LR: 0.3}
	}
	schedule := make([][]int, 12)
	for r := range schedule {
		schedule[r] = []int{r % 5, (r + 2) % 5}
	}
	res, err := afl.TrainMulti(clients, schedule, ds, afl.TrainConfig{Dim: 12, Rounds: 12, L2: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if final := res.History[len(res.History)-1]; final.Accuracy < 0.6 {
		t.Fatalf("final accuracy %v", final.Accuracy)
	}
}

func TestFacadeBidIO(t *testing.T) {
	p := afl.DefaultWorkloadParams()
	p.Clients = 10
	bids, err := afl.GenerateWorkload(p)
	if err != nil {
		t.Fatal(err)
	}
	var jsonBuf, csvBuf bytes.Buffer
	if err := afl.WriteBidsJSON(&jsonBuf, bids); err != nil {
		t.Fatal(err)
	}
	if err := afl.WriteBidsCSV(&csvBuf, bids); err != nil {
		t.Fatal(err)
	}
	j, err := afl.ReadBidsJSON(&jsonBuf)
	if err != nil {
		t.Fatal(err)
	}
	c, err := afl.ReadBidsCSV(&csvBuf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range bids {
		if j[i] != bids[i] || c[i] != bids[i] {
			t.Fatalf("bid %d lost in round trip", i)
		}
	}
}

func TestResultJSONRoundTrip(t *testing.T) {
	bids := []afl.Bid{
		{Client: 0, Price: 2, Theta: 0.5, Start: 1, End: 2, Rounds: 1},
		{Client: 1, Price: 6, Theta: 0.5, Start: 2, End: 3, Rounds: 2},
		{Client: 2, Price: 5, Theta: 0.5, Start: 1, End: 3, Rounds: 2},
	}
	res, err := afl.RunAuction(bids, afl.Config{T: 3, K: 1})
	if err != nil || !res.Feasible {
		t.Fatalf("auction failed: %v", err)
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var got afl.Result
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Tg != res.Tg || got.Cost != res.Cost || len(got.Winners) != len(res.Winners) {
		t.Fatalf("round trip lost data: %+v", got)
	}
	for i := range res.Winners {
		if got.Winners[i].BidIndex != res.Winners[i].BidIndex ||
			got.Winners[i].Payment != res.Winners[i].Payment {
			t.Fatalf("winner %d lost in round trip", i)
		}
	}
	if got.Dual.RatioBound != res.Dual.RatioBound {
		t.Fatal("dual certificate lost in round trip")
	}
}

func TestFacadeExactAndVCG(t *testing.T) {
	bids := []afl.Bid{
		{Client: 0, Price: 2, Theta: 0.5, Start: 1, End: 2, Rounds: 1},
		{Client: 1, Price: 6, Theta: 0.5, Start: 2, End: 3, Rounds: 2},
		{Client: 2, Price: 5, Theta: 0.5, Start: 1, End: 3, Rounds: 2},
	}
	cfg := afl.Config{T: 3, K: 1}
	opt, err := afl.RunExact(bids, 3, cfg, afl.ExactOptions{})
	if err != nil || !opt.Feasible || !opt.Proven || opt.Cost != 7 {
		t.Fatalf("RunExact = %+v, %v", opt, err)
	}
	vcg, err := afl.RunVCG(bids, 3, cfg, afl.ExactOptions{})
	if err != nil || !vcg.Feasible || vcg.Cost != 7 {
		t.Fatalf("RunVCG = %+v, %v", vcg, err)
	}
	for _, w := range vcg.Winners {
		if w.Payment < w.Bid.Price {
			t.Fatalf("VCG IR violated: %+v", w)
		}
	}
	if _, err := afl.RunExact(nil, 3, cfg, afl.ExactOptions{}); err == nil {
		t.Fatal("empty bids must error")
	}
	if _, err := afl.RunVCG(bids, 3, afl.Config{T: 0, K: 1}, afl.ExactOptions{}); err == nil {
		t.Fatal("bad config must error")
	}
}

func TestFacadeScheduleFromSlots(t *testing.T) {
	sched := afl.ScheduleFromSlots(3, map[int][]int{7: {1, 3}, 2: {2}})
	if len(sched) != 3 || sched[0][0] != 7 || sched[1][0] != 2 || sched[2][0] != 7 {
		t.Fatalf("schedule = %v", sched)
	}
}
