package afl

import (
	"context"
	"net/http"
	"time"

	"github.com/fedauction/afl/internal/marketd"
)

// Durable market types, re-exported from the implementation package.
// The market layer is the daemon surface of the module: a Service that
// remembers. Submitted bids, solved outcomes and per-winner payments
// are written to an append-only checksummed event log (WithDurability)
// and replayed bit-identically on the next OpenMarket, so a crashed
// daemon restarts with zero lost or duplicated auctions.
type (
	// Market is a durable auction market: submissions are acknowledged
	// only once logged, outcomes commit atomically (the commit-marker
	// protocol), and Open replays the log on startup. Construct with
	// OpenMarket.
	Market = marketd.Market
	// MarketOutcome is the durable, servable form of one solved
	// submission — what the log stores, recovery replays, and the HTTP
	// API returns.
	MarketOutcome = marketd.OutcomeRecord
	// MarketWinner is the committed view of one accepted bid inside a
	// MarketOutcome.
	MarketWinner = marketd.WinnerRecord
)

// Market error sentinels.
var (
	// ErrMarketClosed is returned by market operations after Close or a
	// crash-point kill.
	ErrMarketClosed = marketd.ErrClosed
	// ErrUnknownSeq is returned by Market.Wait and Market.Outcome for a
	// sequence number the market never issued.
	ErrUnknownSeq = marketd.ErrUnknownSeq
	// ErrOutcomePruned is returned by Market.Wait and Market.Outcome for
	// a committed outcome that the retention policy (WithRetainOutcomes)
	// has evicted from history. Its payments remain in the ledger.
	ErrOutcomePruned = marketd.ErrPruned
)

// WithDurability gives the market an append-only event log in dir
// (created on first use): every acknowledged submission survives
// process death and is re-solved or restored on the next OpenMarket.
// Omitting the option runs the market volatile — a plain Service with
// the market's query surface.
func WithDurability(dir string) Option {
	return func(rc *runConfig) { rc.walDir = dir }
}

// WithSyncEvery batches the log's fsyncs: the file is synced every n
// appends instead of every append. n <= 1 (the default) syncs every
// record — the strongest guarantee: an acknowledged submission is
// durable against power loss, not just process death. Larger n trades
// the tail of the durability window for append throughput.
func WithSyncEvery(n int) Option {
	return func(rc *runConfig) { rc.syncEvery = n }
}

// WithRateLimit applies a per-client token bucket at the market's HTTP
// edge: each client key may submit at perSec sustained with bursts of
// burst; excess submissions are rejected with 429 and a Retry-After
// that, when honored, readmits the client. perSec <= 0 (the default)
// disables rate limiting; burst <= 0 selects max(1, ceil(perSec)).
func WithRateLimit(perSec float64, burst int) Option {
	return func(rc *runConfig) { rc.ratePerSec, rc.rateBurst = perSec, burst }
}

// WithMaxPending bounds admission at the market's HTTP edge: while more
// than n acknowledged submissions await their outcomes, new submissions
// are rejected with 503 instead of queueing unboundedly. n <= 0 (the
// default) disables the check.
func WithMaxPending(n int) Option {
	return func(rc *runConfig) { rc.maxPending = n }
}

// WithGroupCommit coalesces concurrent commits into shared fsyncs: a
// dedicated syncer makes batches of records durable together, so full
// per-commit durability no longer serializes every submission behind
// its own disk flush. Acknowledgments still wait for durability —
// group commit changes who pays for the fsync, not what it guarantees.
// interval > 0 additionally lets the syncer linger that long collecting
// a larger batch (capping commit latency at roughly the interval);
// interval 0 syncs as soon as the syncer is free.
func WithGroupCommit(interval time.Duration) Option {
	return func(rc *runConfig) { rc.groupCommit, rc.syncInterval = true, interval }
}

// WithCheckpointEvery writes a checkpoint every n committed auctions:
// the market's folded state (ledger, retained outcomes, pending
// submissions) is snapshotted into a fresh WAL segment and every
// segment it covers is pruned, so restart replays the snapshot plus the
// post-checkpoint tail instead of all of history — O(tail), not
// O(history). n <= 0 (the default) disables checkpoints and keeps the
// single ever-growing log.
func WithCheckpointEvery(n int) Option {
	return func(rc *runConfig) { rc.checkpointEvery = n }
}

// WithSegmentBytes rotates the WAL into a fresh segment file once the
// active one exceeds n bytes, bounding per-file size between
// checkpoints. n <= 0 (the default) never rotates on size.
func WithSegmentBytes(n int64) Option {
	return func(rc *runConfig) { rc.segmentBytes = n }
}

// WithRetainOutcomes bounds the per-auction history the market keeps:
// once more than n outcomes older than the fold frontier accumulate,
// the oldest are evicted from memory and from future checkpoints. Their
// payments remain in the ledger forever; reads of an evicted sequence
// return ErrOutcomePruned (HTTP 410). n <= 0 (the default) retains
// everything.
func WithRetainOutcomes(n int) Option {
	return func(rc *runConfig) { rc.retainOutcomes = n }
}

// OpenMarket starts (or, with WithDurability, restarts) a market. With
// a durability directory the event log is replayed before OpenMarket
// returns: committed outcomes and the payment ledger are restored
// verbatim — never re-solved, so payments cannot drift — torn tails,
// duplicate records and orphaned payments are absorbed and counted
// (Market.RecoveredFaults), and logged-but-uncommitted submissions are
// re-queued under their original sequence numbers. ctx bounds the
// market's lifetime; cancel it or call Market.Close.
//
// The recognized options are WithDurability, WithSyncEvery,
// WithGroupCommit, WithCheckpointEvery, WithSegmentBytes,
// WithRetainOutcomes, WithWorkers (0 or negative selects GOMAXPROCS),
// WithQueue, WithRateLimit, WithMaxPending, WithObserver, WithNow,
// WithPaymentRule and WithSolver (both applied to every submission
// before its bid record is logged, so recovery re-solves under the same
// rule and solver tier; an approximate-tier outcome additionally
// persists its certified lower bound and ratio in the committed
// record).
func OpenMarket(ctx context.Context, opts ...Option) (*Market, error) {
	rc := applyOptions(opts)
	return marketd.Open(ctx, marketd.Config{
		Dir:             rc.walDir,
		Workers:         rc.workers,
		Queue:           rc.queue,
		SyncEvery:       rc.syncEvery,
		GroupCommit:     rc.groupCommit,
		SyncInterval:    rc.syncInterval,
		CheckpointEvery: rc.checkpointEvery,
		SegmentBytes:    rc.segmentBytes,
		RetainOutcomes:  rc.retainOutcomes,
		RatePerSec:      rc.ratePerSec,
		Burst:           rc.rateBurst,
		MaxPending:      rc.maxPending,
		Observer:        rc.obsv,
		Now:             rc.now,
		Rule:            rc.ruleOverride(),
		Solver:          rc.solverOverride(),
	})
}

// MarketHandler returns the market's HTTP API, ready for an
// http.Server:
//
//	POST /v1/auctions        submit; 200 {"seq":n}, 429/503 + Retry-After
//	POST /v1/auctions:batch  submit many under one group commit; 200 {"seqs":[...]}
//	GET  /v1/auctions/{seq}  200 committed outcome, 202 pending, 404 unknown,
//	                         410 pruned by the retention policy
//	GET  /v1/ledger          per-client cumulative payments
//	GET  /v1/stats           load, recovery and WAL counters (bytes,
//	                         segments, last checkpoint seq, tail replayed)
//	GET  /healthz            liveness
func MarketHandler(m *Market) http.Handler {
	return marketd.Handler(m)
}
