package afl

import (
	"context"
	"net/http"

	"github.com/fedauction/afl/internal/marketd"
)

// Durable market types, re-exported from the implementation package.
// The market layer is the daemon surface of the module: a Service that
// remembers. Submitted bids, solved outcomes and per-winner payments
// are written to an append-only checksummed event log (WithDurability)
// and replayed bit-identically on the next OpenMarket, so a crashed
// daemon restarts with zero lost or duplicated auctions.
type (
	// Market is a durable auction market: submissions are acknowledged
	// only once logged, outcomes commit atomically (the commit-marker
	// protocol), and Open replays the log on startup. Construct with
	// OpenMarket.
	Market = marketd.Market
	// MarketOutcome is the durable, servable form of one solved
	// submission — what the log stores, recovery replays, and the HTTP
	// API returns.
	MarketOutcome = marketd.OutcomeRecord
	// MarketWinner is the committed view of one accepted bid inside a
	// MarketOutcome.
	MarketWinner = marketd.WinnerRecord
)

// Market error sentinels.
var (
	// ErrMarketClosed is returned by market operations after Close or a
	// crash-point kill.
	ErrMarketClosed = marketd.ErrClosed
	// ErrUnknownSeq is returned by Market.Wait and Market.Outcome for a
	// sequence number the market never issued.
	ErrUnknownSeq = marketd.ErrUnknownSeq
)

// WithDurability gives the market an append-only event log in dir
// (created on first use): every acknowledged submission survives
// process death and is re-solved or restored on the next OpenMarket.
// Omitting the option runs the market volatile — a plain Service with
// the market's query surface.
func WithDurability(dir string) Option {
	return func(rc *runConfig) { rc.walDir = dir }
}

// WithSyncEvery batches the log's fsyncs: the file is synced every n
// appends instead of every append. n <= 1 (the default) syncs every
// record — the strongest guarantee: an acknowledged submission is
// durable against power loss, not just process death. Larger n trades
// the tail of the durability window for append throughput.
func WithSyncEvery(n int) Option {
	return func(rc *runConfig) { rc.syncEvery = n }
}

// WithRateLimit applies a per-client token bucket at the market's HTTP
// edge: each client key may submit at perSec sustained with bursts of
// burst; excess submissions are rejected with 429 and a Retry-After
// that, when honored, readmits the client. perSec <= 0 (the default)
// disables rate limiting; burst <= 0 selects max(1, ceil(perSec)).
func WithRateLimit(perSec float64, burst int) Option {
	return func(rc *runConfig) { rc.ratePerSec, rc.rateBurst = perSec, burst }
}

// WithMaxPending bounds admission at the market's HTTP edge: while more
// than n acknowledged submissions await their outcomes, new submissions
// are rejected with 503 instead of queueing unboundedly. n <= 0 (the
// default) disables the check.
func WithMaxPending(n int) Option {
	return func(rc *runConfig) { rc.maxPending = n }
}

// OpenMarket starts (or, with WithDurability, restarts) a market. With
// a durability directory the event log is replayed before OpenMarket
// returns: committed outcomes and the payment ledger are restored
// verbatim — never re-solved, so payments cannot drift — torn tails,
// duplicate records and orphaned payments are absorbed and counted
// (Market.RecoveredFaults), and logged-but-uncommitted submissions are
// re-queued under their original sequence numbers. ctx bounds the
// market's lifetime; cancel it or call Market.Close.
//
// The recognized options are WithDurability, WithSyncEvery, WithWorkers
// (0 or negative selects GOMAXPROCS), WithQueue, WithRateLimit,
// WithMaxPending, WithObserver, WithNow, WithPaymentRule and WithSolver
// (both applied to every submission before its bid record is logged, so
// recovery re-solves under the same rule and solver tier; an
// approximate-tier outcome additionally persists its certified lower
// bound and ratio in the committed record).
func OpenMarket(ctx context.Context, opts ...Option) (*Market, error) {
	rc := applyOptions(opts)
	return marketd.Open(ctx, marketd.Config{
		Dir:        rc.walDir,
		Workers:    rc.workers,
		Queue:      rc.queue,
		SyncEvery:  rc.syncEvery,
		RatePerSec: rc.ratePerSec,
		Burst:      rc.rateBurst,
		MaxPending: rc.maxPending,
		Observer:   rc.obsv,
		Now:        rc.now,
		Rule:       rc.ruleOverride(),
		Solver:     rc.solverOverride(),
	})
}

// MarketHandler returns the market's HTTP API, ready for an
// http.Server:
//
//	POST /v1/auctions        submit; 200 {"seq":n}, 429/503 + Retry-After
//	GET  /v1/auctions/{seq}  200 committed outcome, 202 pending, 404 unknown
//	GET  /v1/ledger          per-client cumulative payments
//	GET  /v1/stats           load and recovery counters
//	GET  /healthz            liveness
func MarketHandler(m *Market) http.Handler {
	return marketd.Handler(m)
}
